use std::fmt;

/// An architectural register index.
///
/// The meaning of the index depends on the enclosing [`Arch`](crate::Arch):
/// `arm32e` uses `0..=15` (with [`Reg::SP`], [`Reg::LR`], [`Reg::PC`] at the
/// ARM positions) and `mips32e` uses `0..=31` (with `$zero` at index 0).
///
/// # Examples
///
/// ```
/// use dtaint_fwbin::Reg;
/// assert_eq!(Reg::SP, Reg(13));
/// assert_eq!(Reg(5).0, 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// ARM stack pointer (`R13`).
    pub const SP: Reg = Reg(13);
    /// ARM link register (`R14`).
    pub const LR: Reg = Reg(14);
    /// ARM program counter (`R15`).
    pub const PC: Reg = Reg(15);
    /// ARM frame pointer (`R11`), as used in the paper's listings.
    pub const FP: Reg = Reg(11);

    /// MIPS zero register (`$0`), hard-wired to zero.
    pub const ZERO: Reg = Reg(0);
    /// MIPS return-value register (`$v0`).
    pub const V0: Reg = Reg(2);
    /// MIPS first argument register (`$a0`).
    pub const A0: Reg = Reg(4);
    /// MIPS stack pointer (`$29`).
    pub const MSP: Reg = Reg(29);
    /// MIPS return-address register (`$31`).
    pub const RA: Reg = Reg(31);
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl From<u8> for Reg {
    fn from(v: u8) -> Self {
        Reg(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_constants_match_indices() {
        assert_eq!(Reg::SP.0, 13);
        assert_eq!(Reg::LR.0, 14);
        assert_eq!(Reg::PC.0, 15);
        assert_eq!(Reg::ZERO.0, 0);
        assert_eq!(Reg::RA.0, 31);
        assert_eq!(Reg::MSP.0, 29);
    }

    #[test]
    fn display_is_nonempty_and_ordered() {
        assert_eq!(Reg(7).to_string(), "x7");
        assert!(Reg(1) < Reg(2));
        assert_eq!(Reg::from(9u8), Reg(9));
    }
}
