//! The `arm32e` dialect: an ARM-flavoured 32-bit RISC instruction set.
//!
//! Distinctive ARM traits kept by the dialect:
//!
//! * comparisons (`CMP`) set condition flags consumed by conditional
//!   branches ([`ArmIns::B`]),
//! * calls write the link register `LR` ([`ArmIns::Bl`], [`ArmIns::Blx`]),
//!   and returns are `BX LR`,
//! * `PUSH`/`POP` with register masks for prologues/epilogues,
//! * 32-bit constants are materialised with `MOVI` + `MOVT` pairs.
//!
//! Encoding: fixed 32-bit little-endian words, `op` in bits `[31:26]`,
//! register fields `a`/`b`/`c` at `[25:21]`/`[20:16]`/`[15:11]`, and 16- or
//! 26-bit immediates in the low bits. Branch offsets are in *words* relative
//! to the instruction after the branch.

use crate::{Error, Reg, Result};
use std::fmt;

/// Branch condition, evaluated against the flags set by the latest `CMP`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Always (unconditional branch).
    Al,
}

impl Cond {
    /// Condition encoded from its 3-bit field value.
    pub fn from_bits(v: u32) -> Option<Cond> {
        Some(match v {
            0 => Cond::Eq,
            1 => Cond::Ne,
            2 => Cond::Lt,
            3 => Cond::Ge,
            4 => Cond::Le,
            5 => Cond::Gt,
            6 => Cond::Al,
            _ => return None,
        })
    }

    /// The 3-bit field value of this condition.
    pub fn bits(self) -> u32 {
        match self {
            Cond::Eq => 0,
            Cond::Ne => 1,
            Cond::Lt => 2,
            Cond::Ge => 3,
            Cond::Le => 4,
            Cond::Gt => 5,
            Cond::Al => 6,
        }
    }

    /// The condition that is true exactly when `self` is false.
    ///
    /// [`Cond::Al`] has no negation and is returned unchanged.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Al => Cond::Al,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Al => "",
        };
        f.write_str(s)
    }
}

/// An `arm32e` instruction.
///
/// Branch offsets ([`ArmIns::B`], [`ArmIns::Bl`]) are measured in
/// instruction words relative to the *next* instruction, mirroring the
/// PC-relative addressing of real ARM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // operand fields are self-describing (rd/rn/rm/imm)
pub enum ArmIns {
    /// No operation.
    Nop,
    /// `rd = rm`.
    MovR { rd: Reg, rm: Reg },
    /// `rd = imm` (zero-extended; clears the high half).
    MovI { rd: Reg, imm: u16 },
    /// `rd = (imm << 16) | (rd & 0xffff)`.
    MovT { rd: Reg, imm: u16 },
    /// `rd = rn + rm`.
    AddR { rd: Reg, rn: Reg, rm: Reg },
    /// `rd = rn + imm` (signed immediate).
    AddI { rd: Reg, rn: Reg, imm: i16 },
    /// `rd = rn - rm`.
    SubR { rd: Reg, rn: Reg, rm: Reg },
    /// `rd = rn - imm` (signed immediate).
    SubI { rd: Reg, rn: Reg, imm: i16 },
    /// `rd = rn * rm`.
    Mul { rd: Reg, rn: Reg, rm: Reg },
    /// `rd = rn & rm`.
    AndR { rd: Reg, rn: Reg, rm: Reg },
    /// `rd = rn | rm`.
    OrrR { rd: Reg, rn: Reg, rm: Reg },
    /// `rd = rn ^ rm`.
    EorR { rd: Reg, rn: Reg, rm: Reg },
    /// `rd = rn << sh`.
    LslI { rd: Reg, rn: Reg, sh: u8 },
    /// `rd = rn >> sh` (logical).
    LsrI { rd: Reg, rn: Reg, sh: u8 },
    /// `rd = rn << rm`.
    LslR { rd: Reg, rn: Reg, rm: Reg },
    /// `rd = rn >> rm` (logical).
    LsrR { rd: Reg, rn: Reg, rm: Reg },
    /// Compare `rn` with `rm`, setting the flags.
    CmpR { rn: Reg, rm: Reg },
    /// Compare `rn` with a signed immediate, setting the flags.
    CmpI { rn: Reg, imm: i16 },
    /// `rt = mem32[rn + off]`.
    Ldr { rt: Reg, rn: Reg, off: i16 },
    /// `mem32[rn + off] = rt`.
    Str { rt: Reg, rn: Reg, off: i16 },
    /// `rt = zext(mem8[rn + off])`.
    Ldrb { rt: Reg, rn: Reg, off: i16 },
    /// `mem8[rn + off] = rt & 0xff`.
    Strb { rt: Reg, rn: Reg, off: i16 },
    /// `rt = zext(mem16[rn + off])`.
    Ldrh { rt: Reg, rn: Reg, off: i16 },
    /// `mem16[rn + off] = rt & 0xffff`.
    Strh { rt: Reg, rn: Reg, off: i16 },
    /// Push the registers in `mask` (bit *i* = `Ri`), decrementing `SP`.
    Push { mask: u16 },
    /// Pop the registers in `mask`, incrementing `SP`.
    Pop { mask: u16 },
    /// Conditional (or `AL`) branch; `off` is in words from the next insn.
    B { cond: Cond, off: i16 },
    /// Call: `LR = next pc`, branch by `off` words from the next insn.
    Bl { off: i32 },
    /// Indirect call through a register: `LR = next pc; pc = rm`.
    Blx { rm: Reg },
    /// Indirect jump `pc = rm`; `BX LR` is the function return.
    Bx { rm: Reg },
}

const OP_SHIFT: u32 = 26;
const A_SHIFT: u32 = 21;
const B_SHIFT: u32 = 16;
const C_SHIFT: u32 = 11;

fn check_reg(r: Reg) -> Result<u32> {
    if r.0 < 16 {
        Ok(r.0 as u32)
    } else {
        Err(Error::BadRegister { index: r.0 })
    }
}

fn pack3(op: u32, a: Reg, b: Reg, c: Reg) -> Result<u32> {
    Ok((op << OP_SHIFT)
        | (check_reg(a)? << A_SHIFT)
        | (check_reg(b)? << B_SHIFT)
        | (check_reg(c)? << C_SHIFT))
}

fn pack_imm16(op: u32, a: Reg, b: Reg, imm: u16) -> Result<u32> {
    Ok((op << OP_SHIFT) | (check_reg(a)? << A_SHIFT) | (check_reg(b)? << B_SHIFT) | imm as u32)
}

fn field_a(w: u32) -> Reg {
    Reg(((w >> A_SHIFT) & 0x1f) as u8)
}
fn field_b(w: u32) -> Reg {
    Reg(((w >> B_SHIFT) & 0x1f) as u8)
}
fn field_c(w: u32) -> Reg {
    Reg(((w >> C_SHIFT) & 0x1f) as u8)
}
fn imm16(w: u32) -> u16 {
    (w & 0xffff) as u16
}

impl ArmIns {
    /// Encodes the instruction to its 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadRegister`] for register indices outside `0..16`
    /// and [`Error::ImmOutOfRange`] for a shift amount of 32 or more or a
    /// `BL` offset that does not fit in 26 bits.
    pub fn encode(self) -> Result<u32> {
        use ArmIns::*;
        Ok(match self {
            Nop => 0,
            MovR { rd, rm } => pack3(0x01, rd, rm, Reg(0))?,
            MovI { rd, imm } => pack_imm16(0x02, rd, Reg(0), imm)?,
            MovT { rd, imm } => pack_imm16(0x03, rd, Reg(0), imm)?,
            AddR { rd, rn, rm } => pack3(0x04, rd, rn, rm)?,
            AddI { rd, rn, imm } => pack_imm16(0x05, rd, rn, imm as u16)?,
            SubR { rd, rn, rm } => pack3(0x06, rd, rn, rm)?,
            SubI { rd, rn, imm } => pack_imm16(0x07, rd, rn, imm as u16)?,
            Mul { rd, rn, rm } => pack3(0x08, rd, rn, rm)?,
            AndR { rd, rn, rm } => pack3(0x09, rd, rn, rm)?,
            OrrR { rd, rn, rm } => pack3(0x0a, rd, rn, rm)?,
            EorR { rd, rn, rm } => pack3(0x0b, rd, rn, rm)?,
            LslI { rd, rn, sh } | LsrI { rd, rn, sh } => {
                if sh >= 32 {
                    return Err(Error::ImmOutOfRange { field: "shift", value: sh as i64 });
                }
                let op = if matches!(self, LslI { .. }) { 0x0c } else { 0x0d };
                pack_imm16(op, rd, rn, sh as u16)?
            }
            LslR { rd, rn, rm } => pack3(0x0e, rd, rn, rm)?,
            LsrR { rd, rn, rm } => pack3(0x0f, rd, rn, rm)?,
            CmpR { rn, rm } => pack3(0x10, rn, rm, Reg(0))?,
            CmpI { rn, imm } => pack_imm16(0x11, rn, Reg(0), imm as u16)?,
            Ldr { rt, rn, off } => pack_imm16(0x12, rt, rn, off as u16)?,
            Str { rt, rn, off } => pack_imm16(0x13, rt, rn, off as u16)?,
            Ldrb { rt, rn, off } => pack_imm16(0x14, rt, rn, off as u16)?,
            Strb { rt, rn, off } => pack_imm16(0x15, rt, rn, off as u16)?,
            Ldrh { rt, rn, off } => pack_imm16(0x1c, rt, rn, off as u16)?,
            Strh { rt, rn, off } => pack_imm16(0x1d, rt, rn, off as u16)?,
            Push { mask } => (0x16 << OP_SHIFT) | mask as u32,
            Pop { mask } => (0x17 << OP_SHIFT) | mask as u32,
            B { cond, off } => (0x18 << OP_SHIFT) | (cond.bits() << A_SHIFT) | (off as u16 as u32),
            Bl { off } => {
                if !(-(1 << 25)..(1 << 25)).contains(&off) {
                    return Err(Error::ImmOutOfRange { field: "bl offset", value: off as i64 });
                }
                (0x19 << OP_SHIFT) | ((off as u32) & 0x03ff_ffff)
            }
            Blx { rm } => pack3(0x1a, rm, Reg(0), Reg(0))?,
            Bx { rm } => pack3(0x1b, rm, Reg(0), Reg(0))?,
        })
    }

    /// Decodes a 32-bit word into an instruction.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadInstruction`] when the opcode is unknown, a
    /// register field exceeds 15, or a condition field is invalid. `addr`
    /// is only used to enrich the error.
    pub fn decode(word: u32, addr: u32) -> Result<ArmIns> {
        use ArmIns::*;
        let bad = || Error::BadInstruction { word, addr };
        let op = word >> OP_SHIFT;
        let a = field_a(word);
        let b = field_b(word);
        let c = field_c(word);
        let reg_ok = |r: Reg| if r.0 < 16 { Ok(r) } else { Err(bad()) };
        Ok(match op {
            0x00 => Nop,
            0x01 => MovR { rd: reg_ok(a)?, rm: reg_ok(b)? },
            0x02 => MovI { rd: reg_ok(a)?, imm: imm16(word) },
            0x03 => MovT { rd: reg_ok(a)?, imm: imm16(word) },
            0x04 => AddR { rd: reg_ok(a)?, rn: reg_ok(b)?, rm: reg_ok(c)? },
            0x05 => AddI { rd: reg_ok(a)?, rn: reg_ok(b)?, imm: imm16(word) as i16 },
            0x06 => SubR { rd: reg_ok(a)?, rn: reg_ok(b)?, rm: reg_ok(c)? },
            0x07 => SubI { rd: reg_ok(a)?, rn: reg_ok(b)?, imm: imm16(word) as i16 },
            0x08 => Mul { rd: reg_ok(a)?, rn: reg_ok(b)?, rm: reg_ok(c)? },
            0x09 => AndR { rd: reg_ok(a)?, rn: reg_ok(b)?, rm: reg_ok(c)? },
            0x0a => OrrR { rd: reg_ok(a)?, rn: reg_ok(b)?, rm: reg_ok(c)? },
            0x0b => EorR { rd: reg_ok(a)?, rn: reg_ok(b)?, rm: reg_ok(c)? },
            0x0c => LslI { rd: reg_ok(a)?, rn: reg_ok(b)?, sh: (imm16(word) & 31) as u8 },
            0x0d => LsrI { rd: reg_ok(a)?, rn: reg_ok(b)?, sh: (imm16(word) & 31) as u8 },
            0x0e => LslR { rd: reg_ok(a)?, rn: reg_ok(b)?, rm: reg_ok(c)? },
            0x0f => LsrR { rd: reg_ok(a)?, rn: reg_ok(b)?, rm: reg_ok(c)? },
            0x10 => CmpR { rn: reg_ok(a)?, rm: reg_ok(b)? },
            0x11 => CmpI { rn: reg_ok(a)?, imm: imm16(word) as i16 },
            0x12 => Ldr { rt: reg_ok(a)?, rn: reg_ok(b)?, off: imm16(word) as i16 },
            0x13 => Str { rt: reg_ok(a)?, rn: reg_ok(b)?, off: imm16(word) as i16 },
            0x14 => Ldrb { rt: reg_ok(a)?, rn: reg_ok(b)?, off: imm16(word) as i16 },
            0x15 => Strb { rt: reg_ok(a)?, rn: reg_ok(b)?, off: imm16(word) as i16 },
            0x16 => Push { mask: imm16(word) },
            0x17 => Pop { mask: imm16(word) },
            0x18 => B {
                cond: Cond::from_bits((word >> A_SHIFT) & 0x1f).ok_or_else(bad)?,
                off: imm16(word) as i16,
            },
            0x19 => {
                let raw = word & 0x03ff_ffff;
                // Sign-extend the 26-bit field.
                let off = ((raw << 6) as i32) >> 6;
                Bl { off }
            }
            0x1a => Blx { rm: reg_ok(a)? },
            0x1b => Bx { rm: reg_ok(a)? },
            0x1c => Ldrh { rt: reg_ok(a)?, rn: reg_ok(b)?, off: imm16(word) as i16 },
            0x1d => Strh { rt: reg_ok(a)?, rn: reg_ok(b)?, off: imm16(word) as i16 },
            _ => return Err(bad()),
        })
    }

    /// True when the instruction ends a basic block (any branch/call/ret).
    pub fn is_terminator(self) -> bool {
        matches!(
            self,
            ArmIns::B { .. } | ArmIns::Bl { .. } | ArmIns::Blx { .. } | ArmIns::Bx { .. }
        )
    }
}

impl fmt::Display for ArmIns {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ArmIns::*;
        let r = |x: Reg| format!("r{}", x.0);
        match *self {
            Nop => write!(f, "nop"),
            MovR { rd, rm } => write!(f, "mov {}, {}", r(rd), r(rm)),
            MovI { rd, imm } => write!(f, "mov {}, #{imm:#x}", r(rd)),
            MovT { rd, imm } => write!(f, "movt {}, #{imm:#x}", r(rd)),
            AddR { rd, rn, rm } => write!(f, "add {}, {}, {}", r(rd), r(rn), r(rm)),
            AddI { rd, rn, imm } => write!(f, "add {}, {}, #{imm}", r(rd), r(rn)),
            SubR { rd, rn, rm } => write!(f, "sub {}, {}, {}", r(rd), r(rn), r(rm)),
            SubI { rd, rn, imm } => write!(f, "sub {}, {}, #{imm}", r(rd), r(rn)),
            Mul { rd, rn, rm } => write!(f, "mul {}, {}, {}", r(rd), r(rn), r(rm)),
            AndR { rd, rn, rm } => write!(f, "and {}, {}, {}", r(rd), r(rn), r(rm)),
            OrrR { rd, rn, rm } => write!(f, "orr {}, {}, {}", r(rd), r(rn), r(rm)),
            EorR { rd, rn, rm } => write!(f, "eor {}, {}, {}", r(rd), r(rn), r(rm)),
            LslI { rd, rn, sh } => write!(f, "lsl {}, {}, #{sh}", r(rd), r(rn)),
            LsrI { rd, rn, sh } => write!(f, "lsr {}, {}, #{sh}", r(rd), r(rn)),
            LslR { rd, rn, rm } => write!(f, "lsl {}, {}, {}", r(rd), r(rn), r(rm)),
            LsrR { rd, rn, rm } => write!(f, "lsr {}, {}, {}", r(rd), r(rn), r(rm)),
            CmpR { rn, rm } => write!(f, "cmp {}, {}", r(rn), r(rm)),
            CmpI { rn, imm } => write!(f, "cmp {}, #{imm}", r(rn)),
            Ldr { rt, rn, off } => write!(f, "ldr {}, [{}, #{off}]", r(rt), r(rn)),
            Str { rt, rn, off } => write!(f, "str {}, [{}, #{off}]", r(rt), r(rn)),
            Ldrb { rt, rn, off } => write!(f, "ldrb {}, [{}, #{off}]", r(rt), r(rn)),
            Strb { rt, rn, off } => write!(f, "strb {}, [{}, #{off}]", r(rt), r(rn)),
            Ldrh { rt, rn, off } => write!(f, "ldrh {}, [{}, #{off}]", r(rt), r(rn)),
            Strh { rt, rn, off } => write!(f, "strh {}, [{}, #{off}]", r(rt), r(rn)),
            Push { mask } => write!(f, "push {mask:#06x}"),
            Pop { mask } => write!(f, "pop {mask:#06x}"),
            B { cond, off } => write!(f, "b{cond} {off:+}"),
            Bl { off } => write!(f, "bl {off:+}"),
            Blx { rm } => write!(f, "blx {}", r(rm)),
            Bx { rm } => write!(f, "bx {}", r(rm)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_decode_roundtrip_basics() {
        let samples = [
            ArmIns::Nop,
            ArmIns::MovR { rd: Reg(1), rm: Reg(2) },
            ArmIns::MovI { rd: Reg(3), imm: 0xffff },
            ArmIns::MovT { rd: Reg(3), imm: 0x1234 },
            ArmIns::AddR { rd: Reg(0), rn: Reg(1), rm: Reg(2) },
            ArmIns::AddI { rd: Reg(0), rn: Reg(13), imm: -8 },
            ArmIns::SubI { rd: Reg::SP, rn: Reg::SP, imm: 0x118 },
            ArmIns::Mul { rd: Reg(4), rn: Reg(5), rm: Reg(6) },
            ArmIns::LslI { rd: Reg(1), rn: Reg(1), sh: 8 },
            ArmIns::CmpR { rn: Reg(9), rm: Reg(1) },
            ArmIns::CmpI { rn: Reg(0), imm: -1 },
            ArmIns::Ldr { rt: Reg(4), rn: Reg(11), off: 0x68 },
            ArmIns::Str { rt: Reg(9), rn: Reg(5), off: 0x4c },
            ArmIns::Ldrb { rt: Reg(6), rn: Reg(5), off: -1 },
            ArmIns::Strb { rt: Reg(6), rn: Reg(5), off: 1 },
            ArmIns::Ldrh { rt: Reg(6), rn: Reg(5), off: 2 },
            ArmIns::Strh { rt: Reg(6), rn: Reg(5), off: -2 },
            ArmIns::Push { mask: 0b0100_1000_1111_0000 },
            ArmIns::Pop { mask: 0x8ff0 },
            ArmIns::B { cond: Cond::Eq, off: -5 },
            ArmIns::B { cond: Cond::Al, off: 100 },
            ArmIns::Bl { off: -33_000_000 + 40_000_000 },
            ArmIns::Bl { off: -1 },
            ArmIns::Blx { rm: Reg(3) },
            ArmIns::Bx { rm: Reg::LR },
        ];
        for ins in samples {
            let w = ins.encode().unwrap();
            let back = ArmIns::decode(w, 0).unwrap();
            assert_eq!(ins, back, "word {w:#010x}");
        }
    }

    #[test]
    fn bad_register_rejected_on_encode() {
        let e = ArmIns::MovR { rd: Reg(16), rm: Reg(0) }.encode().unwrap_err();
        assert_eq!(e, Error::BadRegister { index: 16 });
    }

    #[test]
    fn shift_out_of_range_rejected() {
        let e = ArmIns::LslI { rd: Reg(0), rn: Reg(0), sh: 32 }.encode().unwrap_err();
        assert!(matches!(e, Error::ImmOutOfRange { field: "shift", .. }));
    }

    #[test]
    fn bl_offset_bounds() {
        assert!(ArmIns::Bl { off: (1 << 25) - 1 }.encode().is_ok());
        assert!(ArmIns::Bl { off: -(1 << 25) }.encode().is_ok());
        assert!(ArmIns::Bl { off: 1 << 25 }.encode().is_err());
    }

    #[test]
    fn unknown_opcode_rejected_on_decode() {
        let word = 0x3f << 26;
        let e = ArmIns::decode(word, 0x44).unwrap_err();
        assert_eq!(e, Error::BadInstruction { word, addr: 0x44 });
    }

    #[test]
    fn decode_rejects_reg_field_out_of_range() {
        // MOVR with a-field = 17.
        let word = (0x01 << 26) | (17 << 21);
        assert!(ArmIns::decode(word, 0).is_err());
    }

    #[test]
    fn cond_negation_is_involutive() {
        for bits in 0..6 {
            let c = Cond::from_bits(bits).unwrap();
            assert_eq!(c.negate().negate(), c);
            assert_ne!(c.negate(), c);
        }
        assert_eq!(Cond::Al.negate(), Cond::Al);
    }

    #[test]
    fn terminator_classification() {
        assert!(ArmIns::Bl { off: 0 }.is_terminator());
        assert!(ArmIns::Bx { rm: Reg::LR }.is_terminator());
        assert!(ArmIns::B { cond: Cond::Eq, off: 1 }.is_terminator());
        assert!(!ArmIns::CmpI { rn: Reg(0), imm: 0 }.is_terminator());
        assert!(!ArmIns::Push { mask: 0xf }.is_terminator());
    }

    #[test]
    fn display_matches_paper_style() {
        let s = ArmIns::Ldr { rt: Reg(4), rn: Reg(11), off: 0x68 }.to_string();
        assert_eq!(s, "ldr r4, [r11, #104]");
        assert_eq!(ArmIns::B { cond: Cond::Eq, off: 3 }.to_string(), "beq +3");
    }

    fn arb_reg() -> impl Strategy<Value = Reg> {
        (0u8..16).prop_map(Reg)
    }

    proptest! {
        #[test]
        fn roundtrip_three_reg(op in 0u8..6, a in arb_reg(), b in arb_reg(), c in arb_reg()) {
            let ins = match op {
                0 => ArmIns::AddR { rd: a, rn: b, rm: c },
                1 => ArmIns::SubR { rd: a, rn: b, rm: c },
                2 => ArmIns::Mul { rd: a, rn: b, rm: c },
                3 => ArmIns::AndR { rd: a, rn: b, rm: c },
                4 => ArmIns::OrrR { rd: a, rn: b, rm: c },
                _ => ArmIns::EorR { rd: a, rn: b, rm: c },
            };
            prop_assert_eq!(ArmIns::decode(ins.encode().unwrap(), 0).unwrap(), ins);
        }

        #[test]
        fn roundtrip_mem(load in any::<bool>(), t in arb_reg(), n in arb_reg(), off in any::<i16>()) {
            let ins = if load {
                ArmIns::Ldr { rt: t, rn: n, off }
            } else {
                ArmIns::Str { rt: t, rn: n, off }
            };
            prop_assert_eq!(ArmIns::decode(ins.encode().unwrap(), 0).unwrap(), ins);
        }

        #[test]
        fn roundtrip_branches(cond in 0u32..7, off in any::<i16>()) {
            let ins = ArmIns::B { cond: Cond::from_bits(cond).unwrap(), off };
            prop_assert_eq!(ArmIns::decode(ins.encode().unwrap(), 0).unwrap(), ins);
        }

        #[test]
        fn roundtrip_bl(off in -(1i32 << 25)..(1i32 << 25)) {
            let ins = ArmIns::Bl { off };
            prop_assert_eq!(ArmIns::decode(ins.encode().unwrap(), 0).unwrap(), ins);
        }

        #[test]
        fn decode_never_panics(word in any::<u32>()) {
            let _ = ArmIns::decode(word, 0);
        }
    }
}
