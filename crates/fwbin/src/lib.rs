//! Substrate crate: simplified embedded instruction sets, an assembler, and
//! the FBF binary container used by the DTaint reproduction.
//!
//! Real firmware ships as ELF binaries for ARM32 or MIPS32. This crate
//! provides the equivalent machinery built from scratch:
//!
//! * [`arm`] — `arm32e`, an ARM-flavoured RISC dialect: condition flags set
//!   by `CMP`, arguments in `R0..R3`, a link register, `PUSH`/`POP`.
//! * [`mips`] — `mips32e`, a MIPS-flavoured dialect: compare-and-branch
//!   (no flags), arguments in `$a0..$a3`, `$ra`, `LUI`/`ORI` address
//!   materialisation.
//! * [`asm`] — a label/fixup assembler shared by both dialects.
//! * [`link`] — a tiny static linker that lays out text/PLT/rodata/data
//!   sections and resolves fixups, producing a [`fbf::Binary`].
//! * [`fbf`] — the Firmware Binary Format: sections, function symbols and
//!   import stubs, with round-trip (de)serialisation.
//!
//! Both dialects use fixed 32-bit little-endian instruction words with a
//! common field scheme (`op[31:26] a[25:21] b[20:16] c[15:11]`, `imm16`
//! in `[15:0]`, `imm26` in `[25:0]`). The bit layouts are deliberately
//! simplified relative to real ARM/MIPS — the analyses in the rest of the
//! workspace depend on instruction *semantics* (indirect memory access,
//! calling conventions, indirect calls), not on vendor encodings.
//!
//! # Examples
//!
//! Assemble a function that copies its first argument into a stack buffer
//! and link it into a loadable binary:
//!
//! ```
//! use dtaint_fwbin::arm::ArmIns;
//! use dtaint_fwbin::asm::Assembler;
//! use dtaint_fwbin::link::BinaryBuilder;
//! use dtaint_fwbin::{Arch, Reg};
//!
//! let mut a = Assembler::new(Arch::Arm32e);
//! a.arm(ArmIns::SubI { rd: Reg::SP, rn: Reg::SP, imm: 64 });
//! a.arm(ArmIns::MovR { rd: Reg(1), rm: Reg(0) });
//! a.arm(ArmIns::MovR { rd: Reg(0), rm: Reg::SP });
//! a.call("strcpy");
//! a.arm(ArmIns::AddI { rd: Reg::SP, rn: Reg::SP, imm: 64 });
//! a.ret();
//!
//! let mut b = BinaryBuilder::new(Arch::Arm32e);
//! b.add_function("copy_in", a);
//! b.add_import("strcpy");
//! let bin = b.link()?;
//! assert!(bin.function("copy_in").is_some());
//! # Ok::<(), dtaint_fwbin::Error>(())
//! ```

pub mod arm;
pub mod asm;
pub mod disasm;
pub mod fbf;
pub mod link;
pub mod mips;

mod error;
mod reg;

pub use error::Error;
pub use fbf::{BinStats, Binary, Import, Section, SectionKind, Symbol, SymbolKind};
pub use reg::Reg;

use std::fmt;

/// A convenient result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// The guest instruction-set architecture of a binary.
///
/// The two dialects mirror the paper's ARM and MIPS targets: `arm32e`
/// communicates conditions through flags set by `CMP`, while `mips32e`
/// uses compare-and-branch instructions and a dedicated zero register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Arch {
    /// ARM-flavoured 32-bit dialect (condition flags, `R0..R15`).
    Arm32e,
    /// MIPS-flavoured 32-bit dialect (compare-and-branch, `$0..$31`).
    Mips32e,
}

impl Arch {
    /// Registers that carry the first four integer arguments.
    pub fn arg_regs(self) -> [Reg; 4] {
        match self {
            Arch::Arm32e => [Reg(0), Reg(1), Reg(2), Reg(3)],
            Arch::Mips32e => [Reg(4), Reg(5), Reg(6), Reg(7)],
        }
    }

    /// Register holding a function's return value.
    pub fn ret_reg(self) -> Reg {
        match self {
            Arch::Arm32e => Reg(0),
            Arch::Mips32e => Reg(2),
        }
    }

    /// The stack pointer register.
    pub fn sp(self) -> Reg {
        match self {
            Arch::Arm32e => Reg::SP,
            Arch::Mips32e => Reg(29),
        }
    }

    /// The link register written by call instructions.
    pub fn link_reg(self) -> Reg {
        match self {
            Arch::Arm32e => Reg::LR,
            Arch::Mips32e => Reg(31),
        }
    }

    /// Number of architectural registers in the guest register file.
    pub fn reg_count(self) -> usize {
        match self {
            Arch::Arm32e => 16,
            Arch::Mips32e => 32,
        }
    }

    /// Scratch registers safe for code generation temporaries.
    ///
    /// These are caller-saved registers that the calling convention does not
    /// assign a dedicated role.
    pub fn scratch_regs(self) -> &'static [Reg] {
        match self {
            Arch::Arm32e => &[Reg(4), Reg(5), Reg(6), Reg(7), Reg(8), Reg(9), Reg(10)],
            Arch::Mips32e => {
                &[Reg(8), Reg(9), Reg(10), Reg(11), Reg(12), Reg(13), Reg(14), Reg(15)]
            }
        }
    }

    /// Human-readable name of a register in this architecture's convention.
    pub fn reg_name(self, r: Reg) -> String {
        match self {
            Arch::Arm32e => match r.0 {
                11 => "fp".to_owned(),
                12 => "ip".to_owned(),
                13 => "sp".to_owned(),
                14 => "lr".to_owned(),
                15 => "pc".to_owned(),
                n => format!("r{n}"),
            },
            Arch::Mips32e => {
                const NAMES: [&str; 32] = [
                    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3", "t0", "t1", "t2", "t3", "t4",
                    "t5", "t6", "t7", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "t8", "t9",
                    "k0", "k1", "gp", "sp", "fp", "ra",
                ];
                format!("${}", NAMES[r.0 as usize & 31])
            }
        }
    }
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Arch::Arm32e => f.write_str("arm32e"),
            Arch::Mips32e => f.write_str("mips32e"),
        }
    }
}

/// Size in bytes of every instruction in both dialects.
pub const INS_SIZE: u32 = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_conventions_are_consistent() {
        for arch in [Arch::Arm32e, Arch::Mips32e] {
            let args = arch.arg_regs();
            assert_eq!(args.len(), 4);
            // SP and LR never overlap the argument registers.
            assert!(!args.contains(&arch.sp()));
            assert!(!args.contains(&arch.link_reg()));
            // Scratch registers never overlap args or SP.
            for s in arch.scratch_regs() {
                assert!(!args.contains(s), "{arch}: scratch {s:?} is an arg reg");
                assert_ne!(*s, arch.sp());
            }
            assert!((arch.ret_reg().0 as usize) < arch.reg_count());
        }
    }

    #[test]
    fn arm_ret_reg_is_first_arg() {
        // ARM's convention returns values in R0, which is also arg0. The
        // analyses rely on this (the paper seeds R0 with ret_callsite).
        assert_eq!(Arch::Arm32e.ret_reg(), Arch::Arm32e.arg_regs()[0]);
        // MIPS keeps them distinct ($v0 vs $a0).
        assert_ne!(Arch::Mips32e.ret_reg(), Arch::Mips32e.arg_regs()[0]);
    }

    #[test]
    fn reg_names_follow_convention() {
        assert_eq!(Arch::Arm32e.reg_name(Reg(13)), "sp");
        assert_eq!(Arch::Arm32e.reg_name(Reg(3)), "r3");
        assert_eq!(Arch::Mips32e.reg_name(Reg(4)), "$a0");
        assert_eq!(Arch::Mips32e.reg_name(Reg(29)), "$sp");
        assert_eq!(Arch::Mips32e.reg_name(Reg(0)), "$zero");
    }

    #[test]
    fn arch_display() {
        assert_eq!(Arch::Arm32e.to_string(), "arm32e");
        assert_eq!(Arch::Mips32e.to_string(), "mips32e");
    }
}
