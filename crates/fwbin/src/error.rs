use std::fmt;

/// Errors produced while encoding, decoding, assembling or linking binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// An instruction word did not decode to a known instruction.
    BadInstruction {
        /// The raw instruction word.
        word: u32,
        /// Address the word was decoded at, when known.
        addr: u32,
    },
    /// An immediate operand does not fit in its encoding field.
    ImmOutOfRange {
        /// Human-readable description of the field.
        field: &'static str,
        /// The offending value.
        value: i64,
    },
    /// A register index is not valid for the target architecture.
    BadRegister {
        /// The offending register index.
        index: u8,
    },
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// A label was defined more than once.
    DuplicateLabel(String),
    /// A branch target is too far away for its offset field.
    BranchOutOfRange {
        /// The label that could not be reached.
        label: String,
        /// Byte distance that was required.
        distance: i64,
    },
    /// The byte stream is not a valid FBF binary.
    BadFormat(String),
    /// The byte stream ended before a complete structure was read.
    Truncated,
    /// A section's address range wraps past the end of the 32-bit
    /// address space or cannot hold its data.
    SectionOutOfRange {
        /// Section name.
        name: String,
        /// Load address.
        addr: u32,
        /// Claimed size in bytes.
        size: u32,
    },
    /// A symbol's address range is impossible (wraps the address space).
    BadSymbol {
        /// Symbol name.
        name: String,
        /// Symbol address.
        addr: u32,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::BadInstruction { word, addr } => {
                write!(f, "undecodable instruction word {word:#010x} at {addr:#x}")
            }
            Error::ImmOutOfRange { field, value } => {
                write!(f, "immediate {value} does not fit in {field}")
            }
            Error::BadRegister { index } => write!(f, "invalid register index {index}"),
            Error::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            Error::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            Error::BranchOutOfRange { label, distance } => {
                write!(f, "branch to `{label}` out of range ({distance} bytes)")
            }
            Error::BadFormat(m) => write!(f, "malformed binary: {m}"),
            Error::Truncated => write!(f, "unexpected end of input"),
            Error::SectionOutOfRange { name, addr, size } => {
                write!(f, "section `{name}` out of range ({size:#x} bytes at {addr:#x})")
            }
            Error::BadSymbol { name, addr } => {
                write!(f, "symbol `{name}` at {addr:#x} has an impossible address range")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = Error::BadInstruction { word: 0xdead_beef, addr: 0x1000 };
        let s = e.to_string();
        assert!(s.contains("0xdeadbeef"));
        assert!(s.contains("0x1000"));
        assert!(s.starts_with(char::is_lowercase));

        let e = Error::UndefinedLabel("foo".into());
        assert!(e.to_string().contains("`foo`"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<Error>();
    }
}
