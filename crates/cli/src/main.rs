//! Thin entry point for the `dtaint` CLI; all logic lives in the
//! library so the subcommands are unit-testable.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    match dtaint_cli::run(&args, &mut stdout) {
        Ok(code) => std::process::exit(code),
        Err(msg) => {
            dtaint_telemetry::log::error(&msg);
            std::process::exit(1);
        }
    }
}
