//! The `dtaint` command-line front end.
//!
//! Subcommands:
//!
//! * `scan <image|binary>` — run the full pipeline, print findings
//!   (`--json` for machine-readable reports, `--sarif-out FILE` for a
//!   SARIF 2.1.0 document, `--filter p1,p2` to analyze matching
//!   functions only, `--validate` to confirm findings in the concrete
//!   emulator),
//! * `explain <report.json>` — render each finding's typed evidence
//!   chain as an indented narrative (`--finding PREFIX` to select one),
//! * `diff <baseline.json> <current.json>` — compare two scans by
//!   content-addressed fingerprint: new/fixed/changed-verdict findings
//!   plus metrics-counter deltas; exits 2 when regressions appeared,
//! * `batch <dir>` — scan every `.fwi` image in a directory (images
//!   distributed over `--jobs` worker threads, each scan using the
//!   incremental summary cache persisted in the store), write one
//!   report per image plus `corpus.json`, and track finding lifecycles
//!   in the store's database; exits 2 on new/re-opened vulnerable
//!   findings in non-baseline images, 4 when an image failed to scan or
//!   overran `--deadline-secs`. All store artifacts are written
//!   atomically, progress is journaled per image, and `--resume`
//!   continues a killed run without re-scanning completed images.
//!   While running, a TTY status line and an atomically-rewritten
//!   heartbeat (`status.json`, plus `--status-out FILE`) expose live
//!   progress; at completion the corpus-wide metrics rollup lands in
//!   `corpus.json` (exportable via `--metrics-out`, `--prom-out`,
//!   `--trace-chrome`) and one `RunSummary` line is appended to the
//!   store's `runs.jsonl`,
//! * `status <store>` — inspect a live or interrupted batch from its
//!   heartbeat and journal: progress, per-worker stragglers, committed
//!   and timed-out images,
//! * `history <store>` — the trend table across recorded batch runs,
//! * `unpack <image> [--out dir]` — extract the root filesystem,
//! * `info <image|binary>` — metadata, sections, symbols, signatures,
//! * `disasm <binary> [function]` — objdump-style listing,
//! * `gen <1..6> --out <path>` — generate one of the Table II firmware
//!   profiles (with its ground-truth manifest alongside),
//! * `corpus [--n N] [--seed S]` — the Figure 1 triage on a generated
//!   corpus,
//! * `defs <binary> <function>` — the Figure 6 view: symbolic call
//!   sites, definition pairs and constraints of one function,
//! * `validate <binary> [entry]` — dynamic attack probes only.
//!
//! The command logic lives in [`run`] (writes to any `io::Write`), so
//! every subcommand is unit-testable; `main.rs` is a thin wrapper.

use dtaint_core::{
    AliasMode, AnalysisReport, CacheFormat, CacheRef, Dtaint, DtaintConfig, Finding, SummaryCache,
};
use dtaint_emu::{poison_all_rodata_names, validate as emu_validate, AttackConfig, Verdict};
use dtaint_fwbin::{disasm, Binary};
use dtaint_fwimage::{
    extract_binaries, extract_image, generate_corpus, scan, triage, CorpusConfig, FwImage,
};
use dtaint_telemetry::{
    export_chrome, export_jsonl, export_prometheus, log, Collector, FleetOutcome, FleetProgress,
    Heartbeat, ImageCacheStats, MetricsRegistry, SpanEvent,
};
use std::io::Write;

/// Usage text printed on bad invocations.
pub const USAGE: &str = "\
usage: dtaint [--quiet|-v] <command> [args]

commands:
  scan <image|binary> [--json|--md] [--filter p1,p2] [--threads N] [--interval-guards] [--validate]
                      [--alias store|sse] [--keep-going|--fail-fast] [--profile] [--sarif-out FILE]
                      [--trace-out FILE] [--trace-chrome FILE] [--metrics-out FILE]
  explain <report.json> [--finding PREFIX]
  diff <baseline.json> <current.json>
  batch <dir> [--store DIR] [--out DIR] [--jobs N] [--threads N] [--alias store|sse] [--no-cache]
              [--resume] [--deadline-secs N] [--status-out FILE] [--metrics-out FILE]
              [--prom-out FILE] [--trace-chrome FILE]
  status <store>
  history <store>
  unpack <image> [--out DIR]
  info <image|binary>
  disasm <binary> [FUNCTION]
  gen <1..6> --out PATH [--corrupt garbage-fn|dangling-symbol|overlapping-symbols]
  corpus [--n N] [--seed S]
  defs <binary> FUNCTION
  validate <binary> [ENTRY]

global flags:
  --quiet   only errors on stderr
  -v        debug chatter on stderr
";

/// Executes one CLI invocation, writing human output to `out`.
///
/// Returns the process exit code.
///
/// # Errors
///
/// Returns a message for usage errors and failed operations; `main`
/// prints it to stderr and exits non-zero.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<i32, String> {
    // Verbosity flags may appear anywhere; they are consumed here so
    // subcommands never see them.
    let quiet = args.iter().any(|a| a == "--quiet");
    let verbose = args.iter().any(|a| a == "-v");
    if quiet && verbose {
        return Err("--quiet and -v are mutually exclusive".into());
    }
    log::set_verbosity(if quiet {
        log::Level::Error
    } else if verbose {
        log::Level::Debug
    } else {
        log::Level::Info
    });
    let args: Vec<String> =
        args.iter().filter(|a| *a != "--quiet" && *a != "-v").cloned().collect();
    let mut it = args.iter();
    let cmd = it.next().ok_or_else(|| USAGE.to_owned())?;
    let rest: Vec<String> = it.cloned().collect();
    match cmd.as_str() {
        "scan" => cmd_scan(&rest, out),
        "explain" => cmd_explain(&rest, out),
        "diff" => cmd_diff(&rest, out),
        "batch" => cmd_batch(&rest, out),
        "status" => cmd_status(&rest, out),
        "history" => cmd_history(&rest, out),
        "unpack" => cmd_unpack(&rest, out),
        "info" => cmd_info(&rest, out),
        "disasm" => cmd_disasm(&rest, out),
        "gen" => cmd_gen(&rest, out),
        "corpus" => cmd_corpus(&rest, out),
        "defs" => cmd_defs(&rest, out),
        "validate" => cmd_validate(&rest, out),
        "help" | "--help" | "-h" => {
            write_out(out, USAGE)?;
            Ok(0)
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn write_out(out: &mut dyn Write, s: &str) -> Result<(), String> {
    out.write_all(s.as_bytes()).map_err(|e| format!("write failed: {e}"))
}

fn flag_value<'a>(rest: &'a [String], name: &str) -> Option<&'a str> {
    rest.iter().position(|a| a == name).and_then(|i| rest.get(i + 1)).map(String::as_str)
}

fn has_flag(rest: &[String], name: &str) -> bool {
    rest.iter().any(|a| a == name)
}

/// Parses `--alias store|sse`; `None` keeps the built-in default.
fn parse_alias_mode(rest: &[String], cmd: &str) -> Result<Option<AliasMode>, String> {
    match flag_value(rest, "--alias") {
        Some(v) => v.parse().map(Some).map_err(|e| format!("{cmd}: {e}")),
        None => Ok(None),
    }
}

fn positional(rest: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for (i, a) in rest.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            // Flags with values.
            if matches!(
                a.as_str(),
                "--out"
                    | "--filter"
                    | "--n"
                    | "--seed"
                    | "--threads"
                    | "--corrupt"
                    | "--trace-out"
                    | "--trace-chrome"
                    | "--metrics-out"
                    | "--sarif-out"
                    | "--finding"
                    | "--store"
                    | "--jobs"
                    | "--alias"
                    | "--deadline-secs"
                    | "--status-out"
                    | "--prom-out"
                    | "--drill-io"
                    | "--drill-stall"
            ) {
                skip = true;
            }
            let _ = i;
            continue;
        }
        out.push(a);
    }
    out
}

/// Loads the argument as binaries: a raw FBF file or every executable of
/// an FWI image.
fn load_binaries(path: &str) -> Result<Vec<(String, Binary)>, String> {
    let data = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    if data.starts_with(&dtaint_fwbin::fbf::FBF_MAGIC) {
        let bin = Binary::from_bytes(&data).map_err(|e| format!("parse {path}: {e}"))?;
        return Ok(vec![(path.to_owned(), bin)]);
    }
    let img = extract_image(&data).map_err(|e| format!("unpack {path}: {e}"))?;
    let bins = extract_binaries(&img).map_err(|e| e.to_string())?;
    if bins.is_empty() {
        return Err(format!("{path}: image contains no executables"));
    }
    Ok(bins)
}

fn cmd_scan(rest: &[String], out: &mut dyn Write) -> Result<i32, String> {
    let pos = positional(rest);
    let path = pos.first().ok_or("scan: missing input path")?;
    let filter =
        flag_value(rest, "--filter").map(|f| f.split(',').map(str::to_owned).collect::<Vec<_>>());
    let threads = match flag_value(rest, "--threads") {
        Some(v) => v.parse().map_err(|_| "scan: --threads expects a number".to_owned())?,
        None => 0,
    };
    let interval_guards = has_flag(rest, "--interval-guards");
    let alias_mode = parse_alias_mode(rest, "scan")?;
    let fail_fast = has_flag(rest, "--fail-fast");
    if fail_fast && has_flag(rest, "--keep-going") {
        return Err("scan: --keep-going and --fail-fast are mutually exclusive".into());
    }
    let trace_out = flag_value(rest, "--trace-out");
    let trace_chrome = flag_value(rest, "--trace-chrome");
    let metrics_out = flag_value(rest, "--metrics-out");
    let sarif_out = flag_value(rest, "--sarif-out");
    let profile = has_flag(rest, "--profile");
    let mut config = DtaintConfig {
        function_filter: filter,
        threads,
        interval_guards,
        fail_fast,
        ..Default::default()
    };
    if let Some(mode) = alias_mode {
        config.dataflow.alias.mode = mode;
    }
    let analyzer = Dtaint::with_config(config);

    // One collector for the whole invocation: spans from every binary
    // in the image share the clock epoch, and the registry accumulates.
    // Span recording is only paid for when something will consume it.
    let want_spans = profile || trace_out.is_some() || trace_chrome.is_some();
    let mut tel = if want_spans { Collector::enabled() } else { Collector::disabled() };

    let mut any_vuln = false;
    let mut any_partial = false;
    let mut sarif_reports: Vec<AnalysisReport> = Vec::new();
    for (name, bin) in load_binaries(path)? {
        log::debug(&format!("scanning {name}"));
        let report = analyzer.analyze_traced(&bin, &name, &mut tel).map_err(|e| e.to_string())?;
        if has_flag(rest, "--json") {
            let json = report.to_json().map_err(|e| e.to_string())?;
            write_out(out, &json)?;
            write_out(out, "\n")?;
        } else if has_flag(rest, "--md") {
            write_out(out, &report.to_markdown())?;
        } else {
            write_out(
                out,
                &format!(
                    "== {name}: {} functions, {} sinks, {} vulnerable path(s), {} vulnerability(ies) [{:.2?}]\n",
                    report.functions,
                    report.sinks_count,
                    report.vulnerable_paths().len(),
                    report.vulnerabilities(),
                    report.timings.total(),
                ),
            )?;
            let t = &report.timings;
            write_out(
                out,
                &format!(
                    "   stages: lift+cfg {:.2?}, ssa {:.2?}, ddg {:.2?} (alias {:.2?}, indirect {:.2?}, propagate {:.2?}), detect {:.2?}\n",
                    t.lift_cfg, t.ssa, t.ddg, t.ddg_alias, t.ddg_indirect, t.ddg_propagate, t.detect,
                ),
            )?;
            if interval_guards {
                write_out(
                    out,
                    &format!(
                        "   interval: absint {:.2?} (ddg {:.2?}, detect {:.2?}), {} infeasible path(s) suppressed\n",
                        t.ddg_absint + t.detect_absint,
                        t.ddg_absint,
                        t.detect_absint,
                        report.infeasible_suppressed,
                    ),
                )?;
            }
            for f in &report.findings {
                write_out(out, &format!("{f}\n"))?;
                for step in &f.evidence {
                    write_out(out, &format!("    {step}\n"))?;
                }
            }
            // Only imperfect scans print coverage, so a clean scan's
            // output is byte-identical to pre-fault-tolerance builds.
            if !report.coverage_complete() || report.functions_retried > 0 {
                write_out(
                    out,
                    &format!(
                        "   coverage: {}/{} function(s) analyzed, {} skipped, {} retried degraded\n",
                        report.functions_analyzed,
                        report.functions_analyzed + report.functions_skipped,
                        report.functions_skipped,
                        report.functions_retried,
                    ),
                )?;
                write_out(out, &report.skip_table())?;
            }
        }
        if profile {
            write_profile(out, &report)?;
        }
        // Stage wall-clock as gauges, for `--metrics-out`. Durations are
        // confined to `stage.*_us` names so consumers can filter them
        // out of determinism comparisons. Summed across binaries.
        let t = &report.timings;
        for (nm, d) in [
            ("stage.lift_cfg_us", t.lift_cfg),
            ("stage.ssa_us", t.ssa),
            ("stage.ddg_us", t.ddg),
            ("stage.detect_us", t.detect),
        ] {
            let prev = tel.metrics.gauge(nm);
            tel.metrics.set_gauge(nm, prev + d.as_micros() as u64);
        }
        any_vuln |= report.vulnerabilities() > 0;
        any_partial |= !report.coverage_complete();
        if has_flag(rest, "--validate") {
            let mut attack = AttackConfig::default();
            poison_all_rodata_names(&bin, &mut attack);
            let entry =
                bin.function_at(bin.entry).map(|s| s.name.clone()).unwrap_or_else(|| "main".into());
            let verdict = emu_validate(&bin, &entry, &attack);
            write_out(out, &format!("dynamic validation ({entry}): {verdict:?}\n"))?;
        }
        if sarif_out.is_some() {
            sarif_reports.push(report);
        }
    }
    if let Some(dest) = sarif_out {
        std::fs::write(dest, dtaint_core::sarif::to_sarif_string(&sarif_reports))
            .map_err(|e| format!("write {dest}: {e}"))?;
        log::info(&format!("wrote SARIF ({} run(s)) to {dest}", sarif_reports.len()));
    }
    if let Some(dest) = trace_out {
        std::fs::write(dest, export_jsonl(tel.events()))
            .map_err(|e| format!("write {dest}: {e}"))?;
        log::info(&format!("wrote {} span(s) to {dest}", tel.events().len()));
    }
    if let Some(dest) = trace_chrome {
        std::fs::write(dest, export_chrome(tel.events()))
            .map_err(|e| format!("write {dest}: {e}"))?;
        log::info(&format!("wrote Chrome trace to {dest} (open in chrome://tracing or Perfetto)"));
    }
    if let Some(dest) = metrics_out {
        let json = serde_json::to_string_pretty(&tel.metrics).map_err(|e| e.to_string())?;
        std::fs::write(dest, json).map_err(|e| format!("write {dest}: {e}"))?;
        log::info(&format!("wrote metrics to {dest}"));
    }
    // Vulnerabilities dominate; a vuln-free scan with skipped functions
    // exits 4 so callers can tell "clean" from "clean but partial".
    Ok(if any_vuln {
        2
    } else if any_partial {
        4
    } else {
        0
    })
}

/// The `--profile` breakdown: per-stage wall-clock, logical per-function
/// cost percentiles, and the hotspot table. Every duration-derived token
/// is prefixed `~` — strip those and the output is bit-identical across
/// thread counts, because everything else comes from logical counters.
fn write_profile(out: &mut dyn Write, report: &AnalysisReport) -> Result<(), String> {
    let t = &report.timings;
    let total = t.total().as_micros().max(1) as f64;
    write_out(out, &format!("   profile ({}):\n", report.binary_name))?;
    for (nm, d) in [("lift+cfg", t.lift_cfg), ("ssa", t.ssa), ("ddg", t.ddg), ("detect", t.detect)]
    {
        write_out(
            out,
            &format!("     {nm:<10} ~{d:.2?} ~{:.1}%\n", 100.0 * d.as_micros() as f64 / total),
        )?;
    }
    // Percentiles over the logical histograms (deterministic: bucket
    // upper bounds of step counts, no wall-clock involved).
    for (label, hist) in [
        ("blocks/fn", report.telemetry.metrics.histogram("symex.blocks_per_fn")),
        ("ddg-fuel/fn", report.telemetry.metrics.histogram("ddg.fuel_per_fn")),
    ] {
        if let Some(h) = hist {
            write_out(
                out,
                &format!(
                    "     {label:<11} p50 {} p90 {} p99 {} max {}\n",
                    h.percentile(0.50),
                    h.percentile(0.90),
                    h.percentile(0.99),
                    h.percentile(1.0),
                ),
            )?;
        }
    }
    let hot = report.telemetry.hotspots(5);
    if !hot.is_empty() {
        write_out(out, "     hotspots (by logical work):\n")?;
        for f in hot {
            write_out(
                out,
                &format!(
                    "       {:#010x} {:<24} blocks {} paths {} alias {} fuel {} sinks {} ~{}us ~{}us\n",
                    f.addr,
                    f.name,
                    f.blocks_executed,
                    f.paths_explored,
                    f.alias_rewrites,
                    f.ddg_fuel,
                    f.sinks,
                    f.symex_us,
                    f.ddg_us,
                ),
            )?;
        }
    }
    Ok(())
}

/// Parses a single-report JSON file as produced by `scan --json` on one
/// binary (a whole-image scan concatenates one document per executable;
/// split those before feeding them to `explain`/`diff`).
fn load_report(path: &str) -> Result<AnalysisReport, String> {
    let data = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    AnalysisReport::from_json(data.trim())
        .map_err(|e| format!("parse {path}: {e} (expected one `scan --json` report)"))
}

fn cmd_explain(rest: &[String], out: &mut dyn Write) -> Result<i32, String> {
    let pos = positional(rest);
    let path = pos.first().ok_or("explain: missing report path (produce with `scan --json`)")?;
    let report = load_report(path)?;
    let want = flag_value(rest, "--finding");
    let mut shown = 0usize;
    for f in &report.findings {
        if let Some(prefix) = want {
            if !f.fingerprint.starts_with(prefix) {
                continue;
            }
        }
        shown += 1;
        let status = if f.sanitized() { "sanitized" } else { "VULNERABLE" };
        write_out(
            out,
            &format!(
                "finding {} — {} via `{}` at {:#x} in {} [{status}]\n",
                if f.fingerprint.is_empty() { "<no fingerprint>" } else { &f.fingerprint },
                f.kind,
                f.sink,
                f.sink_ins,
                f.sink_fn,
            ),
        )?;
        let sources: Vec<String> =
            f.sources.iter().map(|s| format!("{}@{:#x}", s.name, s.ins_addr)).collect();
        write_out(out, &format!("  sources: {}\n", sources.join(", ")))?;
        write_out(out, &format!("  tainted expression: {}\n", f.tainted_expr))?;
        let chain = f.call_chain_display();
        if !chain.is_empty() {
            write_out(out, &format!("  call chain: {chain}\n"))?;
        }
        if f.evidence.is_empty() {
            write_out(out, "  (no recorded evidence — legacy report?)\n")?;
        }
        for (i, step) in f.evidence.iter().enumerate() {
            write_out(out, &format!("  {:>2}. {step}\n", i + 1))?;
        }
        write_out(out, "\n")?;
    }
    if shown == 0 {
        return Err(match want {
            Some(prefix) => format!("explain: no finding matches fingerprint `{prefix}`"),
            None => "explain: report contains no findings".into(),
        });
    }
    Ok(0)
}

fn cmd_diff(rest: &[String], out: &mut dyn Write) -> Result<i32, String> {
    let pos = positional(rest);
    let base_path = pos.first().ok_or("diff: missing baseline report path")?;
    let cur_path = pos.get(1).ok_or("diff: missing current report path")?;
    if base_path == cur_path {
        write_out(out, "note: baseline and current are the same file\n")?;
    }
    let base = load_report(base_path)?;
    let cur = load_report(cur_path)?;

    // One exemplar per fingerprint, preferring a vulnerable one so a
    // fingerprint whose path set is partly sanitised still diffs as
    // vulnerable. BTreeMap keys give deterministic section ordering.
    fn index(r: &AnalysisReport) -> std::collections::BTreeMap<&str, &Finding> {
        let mut m = std::collections::BTreeMap::new();
        for f in &r.findings {
            let e = m.entry(f.fingerprint.as_str()).or_insert(f);
            if !f.sanitized() {
                *e = f;
            }
        }
        m
    }
    let before = index(&base);
    let after = index(&cur);

    write_out(
        out,
        &format!(
            "baseline {}: {} finding(s); current {}: {} finding(s)\n",
            base.binary_name,
            base.findings.len(),
            cur.binary_name,
            cur.findings.len(),
        ),
    )?;

    // Fast path: identical fingerprint sets with identical verdicts
    // need no section-by-section walk — the common case when diffing a
    // re-scan of an unchanged image (e.g. out of the batch cache).
    if before.len() == after.len()
        && before.iter().all(|(fp, f)| after.get(fp).is_some_and(|g| g.verdict == f.verdict))
    {
        write_out(
            out,
            &format!(
                "no finding differences: {} fingerprint(s) match with identical verdicts\n",
                after.len()
            ),
        )?;
        write_counter_deltas(&base, &cur, out)?;
        write_out(out, "no regressions\n")?;
        return Ok(0);
    }

    let mut regressions = 0usize;
    let mut new_lines = Vec::new();
    let mut fixed_lines = Vec::new();
    let mut changed_lines = Vec::new();
    for (fp, f) in &after {
        match before.get(fp) {
            None => {
                if !f.sanitized() {
                    regressions += 1;
                }
                new_lines.push(format!("  + {fp} {f}\n"));
            }
            Some(old) if old.verdict != f.verdict => {
                if old.sanitized() && !f.sanitized() {
                    regressions += 1;
                }
                changed_lines.push(format!("  ~ {fp} {} => {}\n", old.verdict, f.verdict));
            }
            Some(_) => {}
        }
    }
    for (fp, f) in &before {
        if !after.contains_key(fp) {
            fixed_lines.push(format!("  - {fp} {f}\n"));
        }
    }
    for (title, lines) in [
        ("new finding(s):", &new_lines),
        ("fixed finding(s):", &fixed_lines),
        ("changed verdict(s):", &changed_lines),
    ] {
        if !lines.is_empty() {
            write_out(out, &format!("{title}\n"))?;
            for l in lines {
                write_out(out, l)?;
            }
        }
    }
    write_counter_deltas(&base, &cur, out)?;

    if regressions > 0 {
        write_out(
            out,
            &format!("{regressions} regression(s): new or re-opened vulnerable finding(s)\n"),
        )?;
        Ok(2)
    } else {
        write_out(out, "no regressions\n")?;
        Ok(0)
    }
}

/// Telemetry counter deltas (the counters are deterministic, so a
/// non-zero delta means the analysis itself changed shape).
fn write_counter_deltas(
    base: &AnalysisReport,
    cur: &AnalysisReport,
    out: &mut dyn Write,
) -> Result<(), String> {
    let mut names: std::collections::BTreeSet<&String> =
        base.telemetry.metrics.counters.keys().collect();
    names.extend(cur.telemetry.metrics.counters.keys());
    let mut delta_lines = Vec::new();
    for name in names {
        let b = base.telemetry.metrics.counters.get(name).copied().unwrap_or(0);
        let c = cur.telemetry.metrics.counters.get(name).copied().unwrap_or(0);
        if b != c {
            delta_lines.push(format!("  {name}: {b} -> {c} ({:+})\n", c as i64 - b as i64));
        }
    }
    if !delta_lines.is_empty() {
        write_out(out, "counter delta(s):\n")?;
        for l in delta_lines {
            write_out(out, &l)?;
        }
    }
    Ok(())
}

/// One image's worth of work inside `batch`: every binary scanned, or
/// the error that stopped the image (other images are unaffected).
struct ImageOutcome {
    /// One report per executable in the image.
    reports: Vec<AnalysisReport>,
    /// The cache scan labels used, one per report.
    labels: Vec<String>,
    /// Set when the image could not be scanned at all.
    error: Option<String>,
    /// The per-image deadline expired (`error` holds the message).
    timeout: bool,
}

/// Cache state captured by the scan worker the moment an image's scan
/// completes — *before* the same worker's next scan can reset the
/// per-label statistics or store new summaries into the shared cache.
/// Committing from this capture (rather than reading the live cache at
/// commit time, which races with the worker running ahead) is what
/// lets an interrupted-and-resumed run reproduce an uninterrupted one
/// byte-for-byte at `--jobs 1`.
struct ScanCapture {
    /// Serialized `DTC2` snapshot to persist at this image's commit.
    snapshot: Option<Vec<u8>>,
    sym_hits: u64,
    sym_misses: u64,
    ddg_hits: u64,
    ddg_misses: u64,
    /// Cache entries invalidated by content/config drift on this image.
    invalidations: u64,
    /// The image's merged report registry — logical counters only, so
    /// the corpus rollup built from these is jobs/warmth-invariant.
    metrics: MetricsRegistry,
    /// The image's scheduler span for `--trace-chrome` (wall-clock;
    /// never journaled, never part of any determinism contract).
    span: Option<SpanEvent>,
}

/// Captures the cache snapshot, this image's scan statistics, and its
/// merged report registry right after its scan settles. Failed and
/// timed-out images carry zero stats and an empty registry (their
/// labels never completed a scan).
fn capture_cache(cache: Option<&std::sync::Arc<SummaryCache>>, oc: &ImageOutcome) -> ScanCapture {
    let mut cap = ScanCapture {
        snapshot: cache.map(|c| c.to_bytes()),
        sym_hits: 0,
        sym_misses: 0,
        ddg_hits: 0,
        ddg_misses: 0,
        invalidations: 0,
        metrics: MetricsRegistry::default(),
        span: None,
    };
    if let Some(c) = cache {
        if oc.error.is_none() {
            for label in &oc.labels {
                let st = c.scan_stats(label);
                cap.sym_hits += st.sym_hits;
                cap.sym_misses += st.sym_misses;
                cap.ddg_hits += st.ddg_hits;
                cap.ddg_misses += st.ddg_misses;
                cap.invalidations += st.invalidations;
            }
        }
    }
    // Report registries hold only logical counters and `image.*`
    // gauges — cache traffic never enters them — so this merge is
    // bit-identical across `--jobs`, `--threads`, and cache warmth.
    for r in &oc.reports {
        cap.metrics.merge_summing_gauges(&r.telemetry.metrics);
    }
    cap
}

/// One image as enumerated from the corpus directory, with the content
/// hash the run journal keys resume decisions on.
struct ImageJob {
    path: std::path::PathBuf,
    /// File stem — the store's image key.
    name: String,
    /// FNV-1a 64 of the image file bytes, 16 hex digits
    /// (`"unreadable"` when the file cannot be read; such an image never
    /// matches a journal entry and takes the per-image failure path).
    content: String,
}

/// Everything the end-of-run fold needs for one image — built either
/// from a fresh scan's commit or replayed from a journal entry, so a
/// resumed run folds exactly what an uninterrupted one would.
struct FoldInput {
    name: String,
    binaries: usize,
    findings: Vec<dtaint_store::ScanFinding>,
    error: Option<String>,
    timeout: bool,
    sym_hits: u64,
    sym_misses: u64,
    ddg_hits: u64,
    ddg_misses: u64,
    invalidations: u64,
    /// The image's report registry, journaled so a resumed run rebuilds
    /// the corpus rollup without re-scanning.
    metrics: MetricsRegistry,
}

impl FoldInput {
    fn from_journal(e: &dtaint_store::JournalEntry) -> FoldInput {
        FoldInput {
            name: e.image.clone(),
            binaries: e.binaries,
            findings: e.findings.clone(),
            error: e.error.clone(),
            timeout: e.outcome == dtaint_store::JournalOutcome::Timeout,
            sym_hits: e.sym_hits,
            sym_misses: e.sym_misses,
            ddg_hits: e.ddg_hits,
            ddg_misses: e.ddg_misses,
            invalidations: e.invalidations,
            metrics: e.metrics.clone(),
        }
    }
}

/// Scans one image: every executable through the pipeline, panics
/// caught (with their payload string — "scan panicked" alone names
/// nothing), per-image errors isolated.
fn scan_image_attempt(
    path: &std::path::Path,
    name: &str,
    cache: Option<&std::sync::Arc<SummaryCache>>,
    threads: usize,
    alias_mode: Option<AliasMode>,
    stall: bool,
) -> ImageOutcome {
    let mut outcome =
        ImageOutcome { reports: Vec::new(), labels: Vec::new(), error: None, timeout: false };
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
        || -> Result<(Vec<AnalysisReport>, Vec<String>), String> {
            if stall {
                // `--drill-stall` turns this image into a deterministic
                // pathological case for deadline tests.
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
            let mut reports = Vec::new();
            let mut labels = Vec::new();
            for (bin_name, bin) in load_binaries(&path.to_string_lossy())? {
                let label = format!("{name}/{bin_name}");
                let mut config = DtaintConfig {
                    threads,
                    cache: cache.map(|c| CacheRef::new(c.clone(), &label)),
                    ..Default::default()
                };
                if let Some(mode) = alias_mode {
                    config.dataflow.alias.mode = mode;
                }
                let report = Dtaint::with_config(config)
                    .analyze(&bin, &bin_name)
                    .map_err(|e| e.to_string())?;
                reports.push(report);
                labels.push(label);
            }
            Ok((reports, labels))
        },
    ));
    match attempt {
        Ok(Ok((reports, labels))) => {
            outcome.reports = reports;
            outcome.labels = labels;
        }
        Ok(Err(e)) => outcome.error = Some(e),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown payload".to_owned());
            outcome.error = Some(format!("scan panicked: {msg}"));
        }
    }
    outcome
}

/// Runs [`scan_image_attempt`] under a wall-clock watchdog. The scan
/// runs on a detached supervisor-side thread; if it outlives the
/// deadline the image becomes a `Timeout` outcome and the thread is
/// abandoned (it keeps running until process exit — acceptable for a
/// batch process, and the timed-out image's results are never read).
/// `deadline_secs == 0` disables the watchdog.
fn scan_with_deadline(
    path: std::path::PathBuf,
    name: String,
    cache: Option<std::sync::Arc<SummaryCache>>,
    threads: usize,
    alias_mode: Option<AliasMode>,
    stall: bool,
    deadline_secs: u64,
) -> ImageOutcome {
    if deadline_secs == 0 {
        return scan_image_attempt(&path, &name, cache.as_ref(), threads, alias_mode, stall);
    }
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ =
            tx.send(scan_image_attempt(&path, &name, cache.as_ref(), threads, alias_mode, stall));
    });
    match rx.recv_timeout(std::time::Duration::from_secs(deadline_secs)) {
        Ok(oc) => oc,
        Err(_) => ImageOutcome {
            reports: Vec::new(),
            labels: Vec::new(),
            error: Some(format!("deadline: exceeded the {deadline_secs}s wall-clock budget")),
            timeout: true,
        },
    }
}

/// Per-image entry of `corpus.json`.
#[derive(serde::Serialize)]
struct CorpusImage {
    name: String,
    binaries: usize,
    findings: usize,
    vulnerable: usize,
    baseline: bool,
    new: usize,
    reopened: usize,
    resolved: usize,
    regression: bool,
    sym_hits: u64,
    sym_misses: u64,
    ddg_hits: u64,
    ddg_misses: u64,
    invalidations: u64,
    timeout: bool,
    error: Option<String>,
}

/// The corpus-level summary written next to the per-image reports.
#[derive(serde::Serialize)]
struct CorpusSummary {
    generation: u64,
    images: Vec<CorpusImage>,
    failures: usize,
    timeouts: usize,
    regressions: usize,
    vulnerable: usize,
    sym_hits: u64,
    sym_misses: u64,
    ddg_hits: u64,
    ddg_misses: u64,
    invalidations: u64,
    cache_entries: usize,
    cache_salvaged: u64,
    cache_discarded: u64,
    /// Corpus-wide rollup of every image's report registry — logical
    /// counters and summed `image.*` gauges, bit-identical across
    /// `--jobs`/`--threads` and across `--resume`.
    metrics: MetricsRegistry,
}

fn cmd_batch(rest: &[String], out: &mut dyn Write) -> Result<i32, String> {
    let pos = positional(rest);
    let dir = pos.first().ok_or("batch: missing corpus directory")?;
    let store_root = flag_value(rest, "--store")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::Path::new(dir.as_str()).join(".dtaint-store"));
    // `--drill-io` routes every store write through a fault plan — the
    // crash-drill hook (hidden from USAGE; for tests and CI drills).
    let fault_plan = match flag_value(rest, "--drill-io") {
        None => dtaint_store::FaultPlan::None,
        Some(v) => {
            let k = v
                .strip_prefix("kill-after-appends:")
                .and_then(|n| n.parse().ok())
                .ok_or("batch: --drill-io expects kill-after-appends:N")?;
            dtaint_store::FaultPlan::KillAfterAppends { appends: k }
        }
    };
    let fault_fs = std::sync::Arc::new(dtaint_store::FaultFs::with_plan(fault_plan));
    let store = dtaint_store::StoreDir::open_with_fs(&store_root, fault_fs)
        .map_err(|e| format!("batch: open store {}: {e}", store_root.display()))?;
    // One batch run at a time per store: the journal and the cache/db
    // snapshots are not merge-safe across concurrent writers.
    let (_lock, stolen) = store.lock().map_err(|e| format!("batch: {e}"))?;
    if let Some(pid) = stolen {
        log::warn(&format!("batch: evicted a stale store lock left by dead process {pid}"));
    }
    let reports_dir = flag_value(rest, "--out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| store.reports_dir());
    std::fs::create_dir_all(&reports_dir)
        .map_err(|e| format!("batch: create {}: {e}", reports_dir.display()))?;
    let jobs: usize = match flag_value(rest, "--jobs") {
        Some(v) => v.parse().map_err(|_| "batch: --jobs expects a number".to_owned())?,
        None => 1,
    };
    let threads: usize = match flag_value(rest, "--threads") {
        Some(v) => v.parse().map_err(|_| "batch: --threads expects a number".to_owned())?,
        None => 0,
    };
    let no_cache = has_flag(rest, "--no-cache");
    let alias_mode = parse_alias_mode(rest, "batch")?;
    let resume = has_flag(rest, "--resume");
    let deadline_secs: u64 = match flag_value(rest, "--deadline-secs") {
        Some(v) => v.parse().map_err(|_| "batch: --deadline-secs expects a number".to_owned())?,
        None => 0,
    };
    let drill_stall = flag_value(rest, "--drill-stall").map(str::to_owned);
    let status_out = flag_value(rest, "--status-out").map(std::path::PathBuf::from);
    let run_started = std::time::Instant::now();
    let started_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());

    let mut image_paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir.as_str())
        .map_err(|e| format!("batch: read {dir}: {e}"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "fwi"))
        .collect();
    image_paths.sort();
    if image_paths.is_empty() {
        return Err(format!("batch: no .fwi images in {dir}"));
    }
    let images: Vec<ImageJob> = image_paths
        .into_iter()
        .map(|path| {
            let name = path
                .file_stem()
                .map_or_else(|| path.display().to_string(), |s| s.to_string_lossy().into_owned());
            let content = std::fs::read(&path).map_or_else(
                |_| "unreadable".to_owned(),
                |b| format!("{:016x}", dtaint_store::fnv64(&b)),
            );
            ImageJob { path, name, content }
        })
        .collect();

    // The findings database: missing is an empty baseline, corrupt is
    // quarantined loudly — a silently-emptied db would make every known
    // finding look new and fire a spurious regression exit.
    let (mut db, sidecar) = store.load_db_checked();
    if let Some(s) = &sidecar {
        log::warn(&format!(
            "batch: findings database was unreadable; quarantined to {} and starting a fresh baseline",
            s.display()
        ));
    }

    // The summary cache persists in the store across runs; `--no-cache`
    // scans cold and leaves the persisted cache untouched. Damaged
    // cache files are salvaged entry-by-entry; legacy DTC1 files are
    // upgraded in place.
    let (cache, cache_report) = if no_cache {
        (None, None)
    } else {
        let (c, rep) = SummaryCache::load_with_report(&store.cache_path());
        (Some(std::sync::Arc::new(c)), Some(rep))
    };
    if let (Some(c), Some(rep)) = (&cache, &cache_report) {
        if rep.damaged {
            log::warn(&format!(
                "batch: summary cache was damaged; salvaged {} entries, discarded {}",
                rep.salvaged, rep.discarded
            ));
        }
        if rep.format == CacheFormat::Dtc1 {
            dtaint_store::atomic_write(store.fs(), &store.cache_path(), &c.to_bytes())
                .map_err(|e| format!("batch: upgrade {}: {e}", store.cache_path().display()))?;
            log::info(&format!(
                "batch: upgraded the summary cache to DTC2 in place ({} entries)",
                rep.entries
            ));
        }
    }

    // Resume bookkeeping. The semantic-config tag fences journal reuse:
    // an entry recorded under another alias mode (or cache setting)
    // would not reproduce this run's results.
    let config_tag = format!(
        "alias={};cache={}",
        flag_value(rest, "--alias").unwrap_or("default"),
        if no_cache { "off" } else { "on" }
    );
    let prior = if resume {
        store.load_journal()
    } else {
        store.clear_journal();
        dtaint_store::JournalLoad::default()
    };
    if prior.discarded_lines > 0 {
        log::warn(&format!(
            "batch: discarded {} torn journal line(s) from the interrupted run",
            prior.discarded_lines
        ));
    }
    let mut journaled: std::collections::HashMap<&str, &dtaint_store::JournalEntry> =
        std::collections::HashMap::new();
    for e in &prior.entries {
        journaled.insert(e.image.as_str(), e); // last entry wins
    }
    // A journal entry replays only while the image bytes and the config
    // still match; timeouts are never final (wall-clock is a property
    // of the host, not the image) and are re-scanned.
    let plan: Vec<Option<&dtaint_store::JournalEntry>> = images
        .iter()
        .map(|j| {
            journaled.get(j.name.as_str()).copied().filter(|e| {
                e.content == j.content
                    && e.config == config_tag
                    && e.outcome != dtaint_store::JournalOutcome::Timeout
            })
        })
        .collect();
    let resumed = plan.iter().flatten().count();
    if resumed > 0 {
        log::info(&format!("batch: resuming — {resumed} image(s) already completed, skipping"));
    }
    let work: Vec<usize> = (0..images.len()).filter(|&i| plan[i].is_none()).collect();
    let worker_count = jobs.clamp(1, work.len().max(1));

    // Live progress: workers report into the tracker; a reporter thread
    // periodically rewrites the heartbeat (atomically, so a poller never
    // sees a torn file) and repaints the TTY status line. Everything is
    // advisory — a heartbeat write failure never fails the batch, and
    // nothing here feeds back into reports or the store's identity
    // contract.
    let progress = FleetProgress::new(images.len(), worker_count, &config_tag);
    for e in plan.iter().flatten() {
        progress.note_resumed(match e.outcome {
            dtaint_store::JournalOutcome::Error => FleetOutcome::Failed,
            dtaint_store::JournalOutcome::Timeout => FleetOutcome::Timeout,
            dtaint_store::JournalOutcome::Ok => FleetOutcome::Ok,
        });
    }
    let write_heartbeat = |hb: &Heartbeat| {
        if let Ok(json) = serde_json::to_string_pretty(hb) {
            let _ = dtaint_store::atomic_write(store.fs(), &store.status_path(), json.as_bytes());
            if let Some(p) = &status_out {
                let _ = dtaint_store::atomic_write(store.fs(), p, json.as_bytes());
            }
        }
    };
    // An initial heartbeat before any scan: a batch killed on its very
    // first image still leaves `dtaint status` something to report.
    write_heartbeat(&progress.heartbeat("running"));
    // The batch scheduler clock: worker spans for `--trace-chrome`
    // share this epoch (lane 0 holds the batch root, worker i uses
    // lane i+1).
    let batch_clock = dtaint_telemetry::Clock::new();

    // Commits one freshly-scanned image durably, in order: report →
    // cache snapshot → journal append. The journal append is the commit
    // point — a crash before it re-scans the image on resume, a crash
    // after it replays the entry, and the per-image cache snapshot
    // keeps a resumed run's warm state identical to an uninterrupted
    // one's.
    let commit =
        |j: &ImageJob, oc: &ImageOutcome, cap: &ScanCapture| -> Result<FoldInput, String> {
            let mut report_name = None;
            let mut findings: Vec<dtaint_store::ScanFinding> = Vec::new();
            if oc.error.is_none() {
                // One report file per image: a single JSON object when the
                // image holds one executable (the common case, `diff`-able
                // as-is), else a JSON array.
                let texts: Result<Vec<String>, String> =
                    oc.reports.iter().map(|r| r.to_json().map_err(|e| e.to_string())).collect();
                let texts = texts?;
                let doc = if texts.len() == 1 {
                    texts[0].clone()
                } else {
                    format!("[\n{}\n]", texts.join(",\n"))
                };
                let report_path = reports_dir.join(format!("{}.json", j.name));
                dtaint_store::atomic_write(store.fs(), &report_path, doc.as_bytes())
                    .map_err(|e| format!("write {}: {e}", report_path.display()))?;
                report_name = Some(format!("{}.json", j.name));

                // One exemplar per fingerprint, vulnerable winning over
                // sanitized (the `diff` convention), before the store fold.
                let mut by_fp: std::collections::BTreeMap<&str, dtaint_store::ScanFinding> =
                    std::collections::BTreeMap::new();
                for f in oc.reports.iter().flat_map(|r| &r.findings) {
                    let entry = by_fp.entry(f.fingerprint.as_str()).or_insert_with(|| {
                        dtaint_store::ScanFinding {
                            fingerprint: f.fingerprint.clone(),
                            vulnerable: false,
                            sink: f.sink.clone(),
                            sink_fn: f.sink_fn.clone(),
                        }
                    });
                    entry.vulnerable |= !f.sanitized();
                }
                findings = by_fp.into_values().collect();
            }
            if let Some(snap) = &cap.snapshot {
                dtaint_store::atomic_write(store.fs(), &store.cache_path(), snap)
                    .map_err(|e| format!("write {}: {e}", store.cache_path().display()))?;
            }
            store
                .append_journal(&dtaint_store::JournalEntry {
                    v: dtaint_store::JOURNAL_VERSION,
                    image: j.name.clone(),
                    content: j.content.clone(),
                    config: config_tag.clone(),
                    report: report_name,
                    outcome: if oc.timeout {
                        dtaint_store::JournalOutcome::Timeout
                    } else if oc.error.is_some() {
                        dtaint_store::JournalOutcome::Error
                    } else {
                        dtaint_store::JournalOutcome::Ok
                    },
                    error: oc.error.clone(),
                    binaries: oc.reports.len(),
                    findings: findings.clone(),
                    sym_hits: cap.sym_hits,
                    sym_misses: cap.sym_misses,
                    ddg_hits: cap.ddg_hits,
                    ddg_misses: cap.ddg_misses,
                    invalidations: cap.invalidations,
                    metrics: cap.metrics.clone(),
                })
                .map_err(|e| format!("write {}: {e}", store.journal_path().display()))?;
            Ok(FoldInput {
                name: j.name.clone(),
                binaries: oc.reports.len(),
                findings,
                error: oc.error.clone(),
                timeout: oc.timeout,
                sym_hits: cap.sym_hits,
                sym_misses: cap.sym_misses,
                ddg_hits: cap.ddg_hits,
                ddg_misses: cap.ddg_misses,
                invalidations: cap.invalidations,
                metrics: cap.metrics.clone(),
            })
        };

    // Work-stealing across the un-journaled images: workers pull the
    // next index and send outcomes back; the main thread commits them
    // durably in sorted-image order (so the journal prefix after a
    // crash is always an in-order prefix of the corpus).
    let next = std::sync::atomic::AtomicUsize::new(0);
    let stop_reporter = std::sync::atomic::AtomicBool::new(false);
    let (txo, rxo) = std::sync::mpsc::channel::<(usize, ImageOutcome, ScanCapture)>();
    let mut folds: Vec<FoldInput> = Vec::with_capacity(images.len());
    let mut span_events: Vec<SpanEvent> = Vec::new();
    let mut commit_err: Option<String> = None;
    std::thread::scope(|s| {
        let images = &images;
        let work = &work;
        let cache = &cache;
        let drill_stall = &drill_stall;
        let next = &next;
        let progress = &progress;
        let stop_reporter = &stop_reporter;
        let write_heartbeat = &write_heartbeat;
        for widx in 0..worker_count {
            let txo = txo.clone();
            s.spawn(move || loop {
                let w = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                let Some(&i) = work.get(w) else { break };
                let j = &images[i];
                progress.start_image(widx, &j.name);
                let span_start = batch_clock.now_us();
                let oc = scan_with_deadline(
                    j.path.clone(),
                    j.name.clone(),
                    cache.clone(),
                    threads,
                    alias_mode,
                    drill_stall.as_deref() == Some(j.name.as_str()),
                    deadline_secs,
                );
                // Capture the cache state *now*, before this worker's
                // next scan can disturb it — the commit on the main
                // thread may run arbitrarily later.
                let mut cap = capture_cache(cache.as_ref(), &oc);
                let outcome = if oc.timeout {
                    FleetOutcome::Timeout
                } else if oc.error.is_some() {
                    FleetOutcome::Failed
                } else {
                    FleetOutcome::Ok
                };
                cap.span = Some(SpanEvent {
                    name: j.name.clone(),
                    cat: "image".into(),
                    lane: widx as u32 + 1,
                    start_us: span_start,
                    dur_us: batch_clock.now_us().saturating_sub(span_start),
                    args: [
                        ("binaries".to_owned(), oc.reports.len() as u64),
                        (
                            "findings".to_owned(),
                            oc.reports.iter().map(|r| r.findings.len() as u64).sum(),
                        ),
                        ("sym_hits".to_owned(), cap.sym_hits),
                        ("ddg_hits".to_owned(), cap.ddg_hits),
                        (
                            "outcome".to_owned(),
                            match outcome {
                                FleetOutcome::Ok => 0,
                                FleetOutcome::Failed => 1,
                                FleetOutcome::Timeout => 2,
                            },
                        ),
                    ]
                    .into_iter()
                    .collect(),
                });
                progress.finish_image(
                    widx,
                    outcome,
                    &ImageCacheStats {
                        sym_hits: cap.sym_hits,
                        sym_misses: cap.sym_misses,
                        ddg_hits: cap.ddg_hits,
                        ddg_misses: cap.ddg_misses,
                        invalidations: cap.invalidations,
                    },
                );
                let _ = txo.send((i, oc, cap));
            });
        }
        drop(txo);
        // The heartbeat reporter: rewrites the status file every ~250ms
        // and repaints the TTY line. Checks the stop flag every 25ms so
        // a short batch shuts down promptly.
        s.spawn(move || {
            use std::io::IsTerminal;
            let tty = std::io::stderr().is_terminal() && log::enabled(log::Level::Info);
            let mut painted = false;
            let mut tick = 0u64;
            while !stop_reporter.load(std::sync::atomic::Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_millis(25));
                tick += 1;
                if !tick.is_multiple_of(10) {
                    continue;
                }
                let hb = progress.heartbeat("running");
                write_heartbeat(&hb);
                if tty {
                    eprint!("\r\x1b[K{}", hb.render_line());
                    painted = true;
                }
            }
            if painted {
                eprint!("\r\x1b[K");
            }
        });
        let mut pending: std::collections::BTreeMap<usize, (ImageOutcome, ScanCapture)> =
            std::collections::BTreeMap::new();
        'commit: for (i, j) in images.iter().enumerate() {
            let fold = match plan[i] {
                Some(entry) => FoldInput::from_journal(entry),
                None => {
                    let (oc, cap) = loop {
                        if let Some(got) = pending.remove(&i) {
                            break got;
                        }
                        match rxo.recv() {
                            Ok((k, oc, cap)) if k == i => break (oc, cap),
                            Ok((k, oc, cap)) => {
                                pending.insert(k, (oc, cap));
                            }
                            Err(_) => {
                                commit_err = Some("batch: a scan worker died".into());
                                break 'commit;
                            }
                        }
                    };
                    if let Some(sp) = &cap.span {
                        span_events.push(sp.clone());
                    }
                    match commit(j, &oc, &cap) {
                        Ok(f) => f,
                        Err(e) => {
                            commit_err = Some(format!("batch: {e}"));
                            break 'commit;
                        }
                    }
                }
            };
            folds.push(fold);
        }
        stop_reporter.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    if let Some(e) = commit_err {
        return Err(e);
    }

    // Deterministic fold, in sorted-image order: record findings and
    // aggregate the corpus summary. Because resumed images replay the
    // exact fold inputs their original scan journaled, the database and
    // `corpus.json` come out byte-identical to an uninterrupted run.
    let mut summary = CorpusSummary {
        generation: 0,
        images: Vec::new(),
        failures: 0,
        timeouts: 0,
        regressions: 0,
        vulnerable: 0,
        sym_hits: 0,
        sym_misses: 0,
        ddg_hits: 0,
        ddg_misses: 0,
        invalidations: 0,
        cache_entries: 0,
        cache_salvaged: cache_report.map_or(0, |r| r.salvaged),
        cache_discarded: cache_report.map_or(0, |r| r.discarded),
        metrics: MetricsRegistry::default(),
    };
    let mut baselines = 0usize;
    let mut totals_new = 0usize;
    let mut totals_reopened = 0usize;
    let mut totals_resolved = 0usize;
    for fi in folds {
        // The corpus rollup folds every image's report registry in
        // sorted-image order; gauges sum, so the result is independent
        // of worker scheduling and identical under `--resume`.
        summary.metrics.merge_summing_gauges(&fi.metrics);
        summary.invalidations += fi.invalidations;
        if let Some(err) = fi.error {
            // Failed and timed-out images never fold findings into the
            // database — a partial scan must not resolve or baseline
            // anything.
            if fi.timeout {
                summary.timeouts += 1;
            } else {
                summary.failures += 1;
            }
            write_out(out, &format!("!! {}: {err}\n", fi.name))?;
            summary.images.push(CorpusImage {
                name: fi.name,
                binaries: 0,
                findings: 0,
                vulnerable: 0,
                baseline: false,
                new: 0,
                reopened: 0,
                resolved: 0,
                regression: false,
                sym_hits: 0,
                sym_misses: 0,
                ddg_hits: 0,
                ddg_misses: 0,
                invalidations: 0,
                timeout: fi.timeout,
                error: Some(err.clone()),
            });
            continue;
        }
        let delta = db.record_scan(&fi.name, &fi.findings);
        baselines += usize::from(delta.is_baseline);
        totals_new += delta.new.len();
        totals_reopened += delta.reopened.len();
        totals_resolved += delta.resolved.len();
        let img = CorpusImage {
            name: fi.name,
            binaries: fi.binaries,
            findings: fi.findings.len(),
            vulnerable: fi.findings.iter().filter(|f| f.vulnerable).count(),
            baseline: delta.is_baseline,
            new: delta.new.len(),
            reopened: delta.reopened.len(),
            resolved: delta.resolved.len(),
            regression: delta.is_regression(),
            sym_hits: fi.sym_hits,
            sym_misses: fi.sym_misses,
            ddg_hits: fi.ddg_hits,
            ddg_misses: fi.ddg_misses,
            invalidations: fi.invalidations,
            timeout: false,
            error: None,
        };
        let status = if delta.is_baseline {
            "baseline".to_owned()
        } else if delta.is_regression() {
            format!("REGRESSION: {} new, {} reopened", delta.new.len(), delta.reopened.len())
        } else {
            format!(
                "{} new, {} reopened, {} resolved",
                delta.new.len(),
                delta.reopened.len(),
                delta.resolved.len()
            )
        };
        write_out(
            out,
            &format!(
                "== {}: {} binarie(s), {} finding(s), {} vulnerable, cache sym {}/{} ddg {}/{} inv {} [{}]\n",
                img.name,
                img.binaries,
                img.findings,
                img.vulnerable,
                img.sym_hits,
                img.sym_hits + img.sym_misses,
                img.ddg_hits,
                img.ddg_hits + img.ddg_misses,
                img.invalidations,
                status,
            ),
        )?;
        summary.vulnerable += img.vulnerable;
        summary.regressions += usize::from(img.regression);
        summary.sym_hits += img.sym_hits;
        summary.sym_misses += img.sym_misses;
        summary.ddg_hits += img.ddg_hits;
        summary.ddg_misses += img.ddg_misses;
        summary.images.push(img);
    }
    summary.generation = db.generation;
    if let Some(c) = &cache {
        summary.cache_entries = c.totals().entries;
        // Final snapshot: with `--jobs` > 1 late workers may have
        // stored entries after the last per-image snapshot.
        dtaint_store::atomic_write(store.fs(), &store.cache_path(), &c.to_bytes())
            .map_err(|e| format!("write {}: {e}", store.cache_path().display()))?;
    }
    store.save_db(&db).map_err(|e| format!("write {}: {e}", store.findings_path().display()))?;
    let corpus_path = reports_dir.join("corpus.json");
    let json = serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?;
    dtaint_store::atomic_write(store.fs(), &corpus_path, json.as_bytes())
        .map_err(|e| format!("write {}: {e}", corpus_path.display()))?;
    // The run is complete and every artifact durable: the journal owes
    // nothing to resume any more.
    store.clear_journal();

    // Batch-level exporters, all fed from the corpus rollup (or, for
    // the Chrome trace, the scheduler spans absorbed in commit order).
    if let Some(dest) = flag_value(rest, "--metrics-out") {
        let json = serde_json::to_string_pretty(&summary.metrics).map_err(|e| e.to_string())?;
        std::fs::write(dest, json).map_err(|e| format!("write {dest}: {e}"))?;
        log::info(&format!("wrote corpus metrics to {dest}"));
    }
    if let Some(dest) = flag_value(rest, "--prom-out") {
        // An export-only copy: run-level gauges/counters ride along for
        // dashboards but never enter the persisted (deterministic)
        // rollup.
        let mut export = summary.metrics.clone();
        export.set_gauge("batch.images", summary.images.len() as u64);
        export.set_gauge("batch.failures", summary.failures as u64);
        export.set_gauge("batch.timeouts", summary.timeouts as u64);
        export.set_gauge("batch.regressions", summary.regressions as u64);
        export.set_gauge("batch.vulnerable", summary.vulnerable as u64);
        export.set_gauge("batch.cache_entries", summary.cache_entries as u64);
        export.inc("batch.cache.sym_hits", summary.sym_hits);
        export.inc("batch.cache.sym_misses", summary.sym_misses);
        export.inc("batch.cache.ddg_hits", summary.ddg_hits);
        export.inc("batch.cache.ddg_misses", summary.ddg_misses);
        export.inc("batch.cache.invalidations", summary.invalidations);
        std::fs::write(dest, export_prometheus(&export, "dtaint_"))
            .map_err(|e| format!("write {dest}: {e}"))?;
        log::info(&format!("wrote Prometheus textfile to {dest}"));
    }
    if let Some(dest) = flag_value(rest, "--trace-chrome") {
        // Lane 0: the batch root span; lanes 1..: one span per image on
        // the worker that scanned it — the work-stealing schedule made
        // visible. Resumed images never ran, so they have no span.
        let mut events = vec![SpanEvent {
            name: "batch".into(),
            cat: "batch".into(),
            lane: 0,
            start_us: 0,
            dur_us: batch_clock.now_us(),
            args: [
                ("images".to_owned(), summary.images.len() as u64),
                ("resumed".to_owned(), resumed as u64),
                ("failures".to_owned(), summary.failures as u64),
                ("timeouts".to_owned(), summary.timeouts as u64),
            ]
            .into_iter()
            .collect(),
        }];
        events.extend(span_events);
        std::fs::write(dest, export_chrome(&events)).map_err(|e| format!("write {dest}: {e}"))?;
        log::info(&format!(
            "wrote batch Chrome trace to {dest} (open in chrome://tracing or Perfetto)"
        ));
    }

    // One run-history line per completed run. Advisory like the
    // heartbeat: a failed append costs trend data, never the batch.
    let run_record = dtaint_store::RunSummary {
        v: dtaint_store::RUN_VERSION,
        started_unix,
        wall_ms: run_started.elapsed().as_millis() as u64,
        config: config_tag.clone(),
        generation: db.generation,
        images: summary.images.len(),
        ok: summary.images.len() - summary.failures - summary.timeouts,
        failures: summary.failures,
        timeouts: summary.timeouts,
        resumed,
        baselines,
        new_findings: totals_new,
        reopened: totals_reopened,
        resolved: totals_resolved,
        regressions: summary.regressions,
        open_vulnerable: db.open_vulnerable(),
        sym_hits: summary.sym_hits,
        sym_misses: summary.sym_misses,
        ddg_hits: summary.ddg_hits,
        ddg_misses: summary.ddg_misses,
        invalidations: summary.invalidations,
        cache_entries: summary.cache_entries,
        journal_discarded: prior.discarded_lines,
    };
    if let Err(e) = store.append_run(&run_record) {
        log::warn(&format!("batch: could not append run history: {e}"));
    }

    // Final heartbeat: phase "done", everything committed.
    write_heartbeat(&progress.heartbeat("done"));

    let timeouts_note = if summary.timeouts > 0 {
        format!(", {} timeout(s)", summary.timeouts)
    } else {
        String::new()
    };
    write_out(
        out,
        &format!(
            "corpus: {} image(s), {} vulnerable finding(s), {} regression(s), {} failure(s){}; cache sym {}/{} ddg {}/{} inv {} ({} entries)\n",
            summary.images.len(),
            summary.vulnerable,
            summary.regressions,
            summary.failures,
            timeouts_note,
            summary.sym_hits,
            summary.sym_hits + summary.sym_misses,
            summary.ddg_hits,
            summary.ddg_hits + summary.ddg_misses,
            summary.invalidations,
            summary.cache_entries,
        ),
    )?;
    Ok(if summary.regressions > 0 {
        2
    } else if summary.failures + summary.timeouts > 0 {
        4
    } else {
        0
    })
}

/// In-flight images a `status` report flags as stragglers: anything a
/// worker has held longer than this many milliseconds.
const STRAGGLER_MS: u64 = 30_000;

/// `dtaint status <store>` — inspect a live, interrupted, or finished
/// batch from its heartbeat and journal. Read-only: never takes the
/// lock, never creates the store.
fn cmd_status(rest: &[String], out: &mut dyn Write) -> Result<i32, String> {
    let pos = positional(rest);
    let root = pos.first().ok_or("status: missing store directory")?;
    let root_path = std::path::Path::new(root.as_str());
    if !root_path.is_dir() {
        return Err(format!("status: no store at {root}"));
    }
    let store = dtaint_store::StoreDir::open(root_path)
        .map_err(|e| format!("status: open store {root}: {e}"))?;
    write_out(out, &format!("store: {root}\n"))?;
    match store.live_run_pid() {
        Some(pid) => write_out(out, &format!("run: live (pid {pid})\n"))?,
        None => write_out(out, "run: no live batch\n")?,
    }

    let heartbeat: Option<Heartbeat> = std::fs::read_to_string(store.status_path())
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok());
    match &heartbeat {
        None => write_out(out, "heartbeat: none\n")?,
        Some(hb) => {
            let pct = if hb.total == 0 { 100.0 } else { 100.0 * hb.done as f64 / hb.total as f64 };
            write_out(
                out,
                &format!(
                    "heartbeat: {} — {}/{} image(s) ({pct:.0}%), {} ok, {} failed, {} timeout(s), {} resumed\n",
                    hb.phase, hb.done, hb.total, hb.ok, hb.failed, hb.timeouts, hb.resumed,
                ),
            )?;
            write_out(
                out,
                &format!(
                    "  {:.2} images/sec, cache hits {:.1}% (sym {}/{} ddg {}/{} inv {}), config {}\n",
                    hb.images_per_sec,
                    100.0 * hb.cache_hit_rate,
                    hb.sym_hits,
                    hb.sym_hits + hb.sym_misses,
                    hb.ddg_hits,
                    hb.ddg_hits + hb.ddg_misses,
                    hb.invalidations,
                    hb.config,
                ),
            )?;
            for w in &hb.workers {
                match &w.image {
                    Some(img) => {
                        let straggler =
                            if w.elapsed_ms >= STRAGGLER_MS { "  ** straggler" } else { "" };
                        write_out(
                            out,
                            &format!(
                                "  worker {}: {img} ({:.1}s){straggler}\n",
                                w.lane,
                                w.elapsed_ms as f64 / 1000.0,
                            ),
                        )?;
                    }
                    None => write_out(out, &format!("  worker {}: idle\n", w.lane))?,
                }
            }
        }
    }

    let journal = store.load_journal();
    if journal.entries.is_empty() {
        write_out(out, "journal: empty (no interrupted run)\n")?;
    } else {
        // A resumed-then-interrupted run can journal an image twice;
        // the last entry wins, matching the resume planner.
        let mut last: std::collections::BTreeMap<&str, &dtaint_store::JournalEntry> =
            std::collections::BTreeMap::new();
        for e in &journal.entries {
            last.insert(e.image.as_str(), e);
        }
        write_out(
            out,
            &format!(
                "journal: {} committed image(s), {} torn line(s)\n",
                last.len(),
                journal.discarded_lines
            ),
        )?;
        let mut timed_out: Vec<&str> = Vec::new();
        for (name, e) in &last {
            let outcome = match e.outcome {
                dtaint_store::JournalOutcome::Ok => "ok",
                dtaint_store::JournalOutcome::Error => "error",
                dtaint_store::JournalOutcome::Timeout => {
                    timed_out.push(name);
                    "timeout"
                }
            };
            let detail = match &e.error {
                Some(err) => format!(" — {err}"),
                None => format!(
                    ": {} finding(s), sym {}/{}",
                    e.findings.len(),
                    e.sym_hits,
                    e.sym_hits + e.sym_misses
                ),
            };
            write_out(out, &format!("  {outcome:<8} {name}{detail}\n"))?;
        }
        if !timed_out.is_empty() {
            write_out(out, &format!("timed-out image(s): {}\n", timed_out.join(", ")))?;
        }
        if let Some(hb) = &heartbeat {
            let remaining = hb.total.saturating_sub(last.len());
            if hb.phase != "done" && remaining > 0 {
                write_out(out, &format!("pending: {remaining} image(s) not yet committed\n"))?;
            }
        }
    }
    Ok(0)
}

/// `dtaint history <store>` — the trend table across recorded runs.
fn cmd_history(rest: &[String], out: &mut dyn Write) -> Result<i32, String> {
    let pos = positional(rest);
    let root = pos.first().ok_or("history: missing store directory")?;
    let root_path = std::path::Path::new(root.as_str());
    if !root_path.is_dir() {
        return Err(format!("history: no store at {root}"));
    }
    let store = dtaint_store::StoreDir::open(root_path)
        .map_err(|e| format!("history: open store {root}: {e}"))?;
    let load = store.load_runs();
    if load.discarded_lines > 0 {
        log::warn(&format!("history: discarded {} unreadable run line(s)", load.discarded_lines));
    }
    if load.runs.is_empty() {
        write_out(out, "history: no recorded runs\n")?;
        return Ok(0);
    }
    write_out(
        out,
        "gen   images  ok  fail  t/o  res  new  reop  rslv  regr  vuln  cache%   wall  config\n",
    )?;
    for r in &load.runs {
        write_out(
            out,
            &format!(
                "{:<5} {:>6}  {:>2}  {:>4}  {:>3}  {:>3}  {:>3}  {:>4}  {:>4}  {:>4}  {:>4}  {:>5.1}%  {:>4.1}s  {}\n",
                r.generation,
                r.images,
                r.ok,
                r.failures,
                r.timeouts,
                r.resumed,
                r.new_findings,
                r.reopened,
                r.resolved,
                r.regressions,
                r.open_vulnerable,
                100.0 * r.cache_hit_rate(),
                r.wall_ms as f64 / 1000.0,
                r.config,
            ),
        )?;
    }
    let regressions: usize = load.runs.iter().map(|r| r.regressions).sum();
    write_out(
        out,
        &format!("{} run(s), {} regression(s) across history\n", load.runs.len(), regressions),
    )?;
    Ok(0)
}

fn cmd_unpack(rest: &[String], out: &mut dyn Write) -> Result<i32, String> {
    let pos = positional(rest);
    let path = pos.first().ok_or("unpack: missing image path")?;
    let data = std::fs::read(path.as_str()).map_err(|e| format!("read {path}: {e}"))?;
    let img = extract_image(&data).map_err(|e| e.to_string())?;
    write_out(
        out,
        &format!(
            "{} {} {} ({:?}, {} files)\n",
            img.metadata.vendor,
            img.metadata.product,
            img.metadata.version,
            img.metadata.arch,
            img.files.len()
        ),
    )?;
    let dir = flag_value(rest, "--out");
    for f in &img.files {
        write_out(out, &format!("  {:>8}  {}\n", f.data.len(), f.path))?;
        if let Some(dir) = dir {
            let dest = std::path::Path::new(dir).join(&f.path);
            if let Some(parent) = dest.parent() {
                std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
            }
            std::fs::write(&dest, &f.data).map_err(|e| e.to_string())?;
        }
    }
    Ok(0)
}

fn cmd_info(rest: &[String], out: &mut dyn Write) -> Result<i32, String> {
    let pos = positional(rest);
    let path = pos.first().ok_or("info: missing input path")?;
    let data = std::fs::read(path.as_str()).map_err(|e| format!("read {path}: {e}"))?;
    let sigs = scan(&data);
    write_out(out, &format!("{path}: {} bytes, {} signature(s)\n", data.len(), sigs.len()))?;
    for s in &sigs {
        write_out(out, &format!("  {:#010x}  {:?}\n", s.offset, s.kind))?;
    }
    for (name, bin) in load_binaries(path).unwrap_or_default() {
        write_out(out, &format!("\nbinary {name}: {} entry {:#x}\n", bin.arch, bin.entry))?;
        for s in &bin.sections {
            write_out(
                out,
                &format!("  section {:<8} {:#010x} {:>8} bytes\n", s.name, s.addr, s.size),
            )?;
        }
        write_out(
            out,
            &format!("  {} functions, {} imports\n", bin.functions().len(), bin.imports.len()),
        )?;
    }
    Ok(0)
}

fn cmd_disasm(rest: &[String], out: &mut dyn Write) -> Result<i32, String> {
    let pos = positional(rest);
    let path = pos.first().ok_or("disasm: missing binary path")?;
    let bins = load_binaries(path)?;
    let (_, bin) = &bins[0];
    match pos.get(1) {
        Some(func) => {
            let lines = disasm::disassemble_function(bin, func)
                .ok_or_else(|| format!("no function `{func}`"))?;
            for l in lines {
                match l.call_target {
                    Some(t) => write_out(
                        out,
                        &format!("{:#010x}: {:08x}  {:<28} ; → {t}\n", l.addr, l.word, l.text),
                    )?,
                    None => {
                        write_out(out, &format!("{:#010x}: {:08x}  {}\n", l.addr, l.word, l.text))?
                    }
                }
            }
        }
        None => write_out(out, &disasm::listing(bin))?,
    }
    Ok(0)
}

fn cmd_gen(rest: &[String], out: &mut dyn Write) -> Result<i32, String> {
    let pos = positional(rest);
    let index: usize = pos
        .first()
        .ok_or("gen: missing profile index (1..6)")?
        .parse()
        .map_err(|_| "gen: index must be 1..6".to_owned())?;
    if !(1..=6).contains(&index) {
        return Err("gen: index must be 1..6".into());
    }
    let dest = flag_value(rest, "--out").ok_or("gen: missing --out PATH")?;
    let profile = dtaint_fwgen::table2_profiles().remove(index - 1);
    let mut fw = dtaint_fwgen::build_firmware(&profile);
    // Deliberate damage, for exercising the fault-tolerant scan path
    // (CI smoke, demos): the mutated executable replaces the pristine
    // one inside the packed image.
    if let Some(kind) = flag_value(rest, "--corrupt") {
        let fault = match kind {
            "garbage-fn" => dtaint_fwgen::BinFault::GarbageOpcodes { index: 1, seed: 7 },
            "dangling-symbol" => dtaint_fwgen::BinFault::DanglingSymbol,
            "overlapping-symbols" => dtaint_fwgen::BinFault::OverlappingSymbols,
            other => {
                return Err(format!(
                "gen: unknown --corrupt `{other}` (garbage-fn|dangling-symbol|overlapping-symbols)"
            ))
            }
        };
        let mutant = dtaint_fwgen::corrupt_binary(&fw.binary, &fault).to_bytes();
        for f in &mut fw.image.files {
            if f.data.starts_with(&dtaint_fwbin::fbf::FBF_MAGIC) {
                f.data = mutant.clone();
            }
        }
    }
    std::fs::write(dest, fw.image.pack(false)).map_err(|e| e.to_string())?;
    let manifest = serde_json::to_string_pretty(&fw.ground_truth).map_err(|e| e.to_string())?;
    let manifest_path = format!("{dest}.truth.json");
    std::fs::write(&manifest_path, manifest).map_err(|e| e.to_string())?;
    write_out(
        out,
        &format!(
            "wrote {} ({} {}, {} functions) and {}\n",
            dest,
            profile.manufacturer,
            profile.firmware_version,
            profile.total_functions,
            manifest_path
        ),
    )?;
    Ok(0)
}

fn cmd_corpus(rest: &[String], out: &mut dyn Write) -> Result<i32, String> {
    let n = flag_value(rest, "--n").and_then(|v| v.parse().ok()).unwrap_or(2000);
    let seed = flag_value(rest, "--seed").and_then(|v| v.parse().ok()).unwrap_or(7);
    let corpus = generate_corpus(&CorpusConfig { n_images: n, seed, ..Default::default() });
    let stats = triage(&corpus);
    write_out(out, "year  total  unpacked  emulated\n")?;
    for (year, s) in &stats {
        write_out(out, &format!("{year}  {:>5}  {:>8}  {:>8}\n", s.total, s.unpacked, s.emulated))?;
    }
    let total: usize = stats.values().map(|s| s.total).sum();
    let emulated: usize = stats.values().map(|s| s.emulated).sum();
    write_out(
        out,
        &format!(
            "emulation success: {emulated}/{total} ({:.1}%)\n",
            100.0 * emulated as f64 / total as f64
        ),
    )?;
    Ok(0)
}

fn cmd_defs(rest: &[String], out: &mut dyn Write) -> Result<i32, String> {
    let pos = positional(rest);
    let path = pos.first().ok_or("defs: missing binary path")?;
    let func = pos.get(1).ok_or("defs: missing function name")?;
    let bins = load_binaries(path)?;
    let (_, bin) = &bins[0];
    let sym = bin.function(func).ok_or_else(|| format!("no function `{func}`"))?;
    let cfg = dtaint_cfg::build_function_cfg(bin, sym).map_err(|e| e.to_string())?;
    let mut pool = dtaint_symex::ExprPool::new();
    let summary =
        dtaint_symex::analyze_function(bin, &cfg, &mut pool, &dtaint_symex::SymexConfig::default());
    write_out(out, &summary.render(&pool))?;
    Ok(0)
}

fn cmd_validate(rest: &[String], out: &mut dyn Write) -> Result<i32, String> {
    let pos = positional(rest);
    let path = pos.first().ok_or("validate: missing binary path")?;
    let bins = load_binaries(path)?;
    let (_, bin) = &bins[0];
    let entry = pos
        .get(1)
        .map(|s| s.to_string())
        .or_else(|| bin.function_at(bin.entry).map(|s| s.name.clone()))
        .ok_or("validate: no entry function")?;
    let mut attack = AttackConfig::default();
    poison_all_rodata_names(bin, &mut attack);
    let verdict = emu_validate(bin, &entry, &attack);
    write_out(out, &format!("{verdict:?}\n"))?;
    Ok(match verdict {
        Verdict::NoEffect => 0,
        _ => 2,
    })
}

/// Convenience for tests: runs a command line and captures stdout.
pub fn run_captured(args: &[&str]) -> (Result<i32, String>, String) {
    let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut buf = Vec::new();
    let code = run(&owned, &mut buf);
    (code, String::from_utf8_lossy(&buf).into_owned())
}

/// Re-export for `main.rs` and tests that need to pack images.
pub fn pack_image(img: &FwImage, encrypted: bool) -> Vec<u8> {
    img.pack(encrypted)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("dtaint-cli-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn small_image_path() -> String {
        let mut profile = dtaint_fwgen::table2_profiles().remove(0);
        profile.total_functions = 60;
        let fw = dtaint_fwgen::build_firmware(&profile);
        let p = tmpdir().join("dir645.fwi");
        std::fs::write(&p, fw.image.pack(false)).unwrap();
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn help_prints_usage() {
        let (code, out) = run_captured(&["help"]);
        assert_eq!(code, Ok(0));
        assert!(out.contains("usage: dtaint"));
    }

    #[test]
    fn unknown_command_errors() {
        let (code, _) = run_captured(&["frobnicate"]);
        assert!(code.is_err());
    }

    #[test]
    fn scan_reports_findings_and_exit_code() {
        let p = small_image_path();
        let (code, out) = run_captured(&["scan", &p]);
        assert_eq!(code, Ok(2), "vulnerabilities present → exit 2");
        assert!(out.contains("VULNERABLE"), "{out}");
        assert!(out.contains("source"), "trace lines present: {out}");
    }

    #[test]
    fn scan_prints_stage_breakdown_and_honors_threads() {
        let p = small_image_path();
        let (code, seq) = run_captured(&["scan", &p, "--threads", "1"]);
        assert_eq!(code, Ok(2));
        assert!(seq.contains("stages:"), "{seq}");
        assert!(seq.contains("propagate"), "{seq}");
        let (code, par) = run_captured(&["scan", &p, "--threads", "4"]);
        assert_eq!(code, Ok(2));
        // Findings (every line after the summary/stage header) must be
        // identical regardless of thread count.
        let body = |s: &str| s.lines().skip(2).map(str::to_owned).collect::<Vec<_>>();
        assert_eq!(body(&seq), body(&par));
        let (code, _) = run_captured(&["scan", &p, "--threads", "zero"]);
        assert!(code.is_err());
    }

    #[test]
    fn scan_interval_guards_prints_absint_line_and_stays_deterministic() {
        let p = small_image_path();
        let (code, seq) = run_captured(&["scan", &p, "--interval-guards", "--threads", "1"]);
        assert_eq!(code, Ok(2));
        assert!(seq.contains("interval: absint"), "{seq}");
        assert!(seq.contains("infeasible path(s) suppressed"), "{seq}");
        let (code, par) = run_captured(&["scan", &p, "--interval-guards", "--threads", "4"]);
        assert_eq!(code, Ok(2));
        // Skip summary, stage and interval-timing headers: the findings
        // themselves must be identical regardless of thread count.
        let body = |s: &str| s.lines().skip(3).map(str::to_owned).collect::<Vec<_>>();
        assert_eq!(body(&seq), body(&par));
    }

    #[test]
    fn scan_markdown_renders() {
        let p = small_image_path();
        let (code, out) = run_captured(&["scan", &p, "--md"]);
        assert_eq!(code, Ok(2));
        assert!(out.contains("# DTaint report"), "{out}");
        assert!(out.contains("## Vulnerabilities"));
    }

    #[test]
    fn scan_json_is_parseable() {
        let p = small_image_path();
        let (code, out) = run_captured(&["scan", &p, "--json"]);
        assert_eq!(code, Ok(2));
        let report = dtaint_core::AnalysisReport::from_json(out.trim()).unwrap();
        assert!(report.vulnerabilities() > 0);
    }

    #[test]
    fn scan_sarif_out_writes_schema_shaped_document() {
        let p = small_image_path();
        let dest = tmpdir().join("scan.sarif");
        let (code, _) = run_captured(&["scan", &p, "--sarif-out", dest.to_str().unwrap()]);
        assert_eq!(code, Ok(2), "exit code still reflects the findings");
        let text = std::fs::read_to_string(&dest).unwrap();
        assert!(text.contains("\"$schema\""), "schema stamped");
        assert!(text.contains("sarif-schema-2.1.0"), "2.1.0 schema URI");
        assert!(text.contains("\"codeFlows\""), "evidence chains exported");
        assert!(text.contains("dtaint/findingIdentity/v1"), "partial fingerprints present");
        assert!(text.contains("\"error\""), "vulnerable findings are errors");
    }

    #[test]
    fn explain_renders_numbered_evidence_and_filters_by_fingerprint() {
        let p = small_image_path();
        let (_, json) = run_captured(&["scan", &p, "--json"]);
        let rp = tmpdir().join("explain-report.json");
        std::fs::write(&rp, &json).unwrap();
        let path = rp.to_string_lossy().into_owned();
        let (code, out) = run_captured(&["explain", &path]);
        assert_eq!(code, Ok(0), "{out}");
        assert!(out.contains("finding "), "{out}");
        assert!(out.contains("tainted expression:"), "{out}");
        assert!(out.contains("verdict:"), "chains end in the verdict: {out}");
        assert!(out.contains("   1. "), "steps are numbered: {out}");
        // --finding narrows to one fingerprint (prefix match).
        let report = AnalysisReport::from_json(json.trim()).unwrap();
        let fp = report.findings[0].fingerprint.clone();
        let (code, out) = run_captured(&["explain", &path, "--finding", &fp[..8]]);
        assert_eq!(code, Ok(0), "{out}");
        assert!(out.contains(&fp), "{out}");
        let (code, _) = run_captured(&["explain", &path, "--finding", "zzzzzz"]);
        assert!(code.is_err(), "unmatched fingerprint prefix is an error");
    }

    #[test]
    fn diff_identical_reports_is_empty_and_exits_zero() {
        let p = small_image_path();
        let (_, json) = run_captured(&["scan", &p, "--json"]);
        let a = tmpdir().join("diff-base.json");
        let b = tmpdir().join("diff-cur.json");
        std::fs::write(&a, &json).unwrap();
        std::fs::write(&b, &json).unwrap();
        let (code, out) = run_captured(&["diff", a.to_str().unwrap(), b.to_str().unwrap()]);
        assert_eq!(code, Ok(0), "{out}");
        assert!(out.contains("no finding differences"), "{out}");
        assert!(out.contains("no regressions"), "{out}");
    }

    #[test]
    fn diff_same_file_fast_path_notes_and_counts_fingerprints() {
        let p = small_image_path();
        let (_, json) = run_captured(&["scan", &p, "--json"]);
        let a = tmpdir().join("diff-self.json");
        std::fs::write(&a, &json).unwrap();
        let path = a.to_str().unwrap();
        let (code, out) = run_captured(&["diff", path, path]);
        assert_eq!(code, Ok(0), "{out}");
        assert!(out.contains("note: baseline and current are the same file"), "{out}");
        assert!(out.contains("no finding differences:"), "{out}");
        assert!(out.contains("fingerprint(s) match with identical verdicts"), "{out}");
        assert!(out.contains("no regressions"), "{out}");
    }

    /// Builds a small corpus directory holding the profile-1 image and
    /// a findings-free variant of it (same binary name, no plants) for
    /// regression testing.
    fn corpus_dir(tag: &str) -> (std::path::PathBuf, Vec<u8>, Vec<u8>) {
        let dir = tmpdir().join(format!("corpus-{tag}"));
        std::fs::create_dir_all(&dir).unwrap();
        let mut profile = dtaint_fwgen::table2_profiles().remove(0);
        profile.total_functions = 50;
        let full = dtaint_fwgen::build_firmware(&profile).image.pack(false);
        profile.plants.clear();
        profile.extra_paths = 0;
        let benign = dtaint_fwgen::build_firmware(&profile).image.pack(false);
        (dir, full, benign)
    }

    #[test]
    fn batch_cold_then_warm_reuses_the_cache_and_stays_quiet() {
        let (dir, full, _) = corpus_dir("warm");
        std::fs::write(dir.join("router.fwi"), &full).unwrap();
        let d = dir.to_str().unwrap().to_owned();
        let (code, out) = run_captured(&["batch", &d, "--jobs", "2"]);
        assert_eq!(code, Ok(0), "baseline run never regresses: {out}");
        assert!(out.contains("[baseline]"), "{out}");
        assert!(out.contains("corpus: 1 image(s)"), "{out}");
        let report = dir.join(".dtaint-store/reports/router.json");
        assert!(report.exists(), "per-image report written");
        let corpus = dir.join(".dtaint-store/reports/corpus.json");
        assert!(corpus.exists(), "corpus summary written");
        // Warm re-run: no finding churn, and the cache serves summaries.
        let (code, out) = run_captured(&["batch", &d, "--jobs", "2"]);
        assert_eq!(code, Ok(0), "{out}");
        assert!(out.contains("0 new, 0 reopened, 0 resolved"), "{out}");
        let text = std::fs::read_to_string(&corpus).unwrap();
        assert!(text.contains("\"sym_misses\": 0"), "warm run misses nothing: {text}");
        assert!(text.contains("\"ddg_misses\": 0"), "warm run misses nothing: {text}");
        assert!(!text.contains("\"sym_hits\": 0,"), "warm run hits the cache: {text}");
    }

    #[test]
    fn batch_no_cache_scans_cold() {
        let (dir, full, _) = corpus_dir("nocache");
        std::fs::write(dir.join("router.fwi"), &full).unwrap();
        let d = dir.to_str().unwrap().to_owned();
        let _ = run_captured(&["batch", &d, "--no-cache"]);
        let (code, out) = run_captured(&["batch", &d, "--no-cache"]);
        assert_eq!(code, Ok(0), "{out}");
        assert!(out.contains("cache sym 0/0 ddg 0/0"), "no probes at all: {out}");
        assert!(out.contains("(0 entries)"), "nothing persisted: {out}");
    }

    #[test]
    fn batch_tracks_regressions_across_versions() {
        let (dir, full, benign) = corpus_dir("reg");
        let img = dir.join("router.fwi");
        let d = dir.to_str().unwrap().to_owned();
        // Baseline: the benign build of the image.
        std::fs::write(&img, &benign).unwrap();
        let (code, out) = run_captured(&["batch", &d]);
        assert_eq!(code, Ok(0), "{out}");
        // The vendor ships a vulnerable update: every planted finding
        // is new — a regression, exit 2.
        std::fs::write(&img, &full).unwrap();
        let (code, out) = run_captured(&["batch", &d]);
        assert_eq!(code, Ok(2), "{out}");
        assert!(out.contains("REGRESSION"), "{out}");
        // Re-scanning the same version is quiet again.
        let (code, out) = run_captured(&["batch", &d]);
        assert_eq!(code, Ok(0), "{out}");
        assert!(out.contains("0 new, 0 reopened"), "{out}");
        // Reverting resolves findings (not a regression), and shipping
        // the vulnerable build again re-opens them.
        std::fs::write(&img, &benign).unwrap();
        let (code, out) = run_captured(&["batch", &d]);
        assert_eq!(code, Ok(0), "fixes are not regressions: {out}");
        assert!(out.contains("resolved"), "{out}");
        std::fs::write(&img, &full).unwrap();
        let (code, out) = run_captured(&["batch", &d]);
        assert_eq!(code, Ok(2), "re-opened findings regress: {out}");
        assert!(out.contains("reopened"), "{out}");
    }

    #[test]
    fn batch_isolates_a_broken_image_and_exits_4() {
        let (dir, full, _) = corpus_dir("broken");
        std::fs::write(dir.join("good.fwi"), &full).unwrap();
        std::fs::write(dir.join("bad.fwi"), b"this is not a firmware image").unwrap();
        let d = dir.to_str().unwrap().to_owned();
        let (code, out) = run_captured(&["batch", &d, "--jobs", "2"]);
        assert_eq!(code, Ok(4), "failures exit 4: {out}");
        assert!(out.contains("!! bad:"), "{out}");
        assert!(out.contains("== good:"), "the good image still scanned: {out}");
        assert!(out.contains("1 failure(s)"), "{out}");
        let (code, _) = run_captured(&["batch", dir.join("empty").to_str().unwrap()]);
        assert!(code.is_err(), "unreadable/empty corpus is a usage error");
    }

    #[test]
    fn batch_observability_artifacts_parse_and_lint() {
        let (dir, full, _) = corpus_dir("obs");
        std::fs::write(dir.join("router.fwi"), &full).unwrap();
        let d = dir.to_str().unwrap().to_owned();
        let status = dir.join("hb.json");
        let prom = dir.join("metrics.prom");
        let rollup = dir.join("rollup.json");
        let trace = dir.join("trace.json");
        let (code, out) = run_captured(&[
            "batch",
            &d,
            "--jobs",
            "2",
            "--status-out",
            status.to_str().unwrap(),
            "--prom-out",
            prom.to_str().unwrap(),
            "--metrics-out",
            rollup.to_str().unwrap(),
            "--trace-chrome",
            trace.to_str().unwrap(),
        ]);
        assert_eq!(code, Ok(0), "{out}");
        assert!(out.contains("inv 0"), "invalidation count in console: {out}");

        // The final heartbeat: phase "done", all images accounted for,
        // written both to --status-out and the store's status.json.
        let hb: dtaint_telemetry::Heartbeat =
            serde_json::from_str(&std::fs::read_to_string(&status).unwrap()).unwrap();
        assert_eq!(hb.phase, "done");
        assert_eq!((hb.done, hb.total, hb.ok), (1, 1, 1));
        assert!(std::fs::read_to_string(dir.join(".dtaint-store/status.json"))
            .unwrap()
            .contains("\"phase\": \"done\""));

        // The Prometheus textfile passes the exposition-format lint and
        // carries the batch gauges.
        let text = std::fs::read_to_string(&prom).unwrap();
        dtaint_telemetry::lint_textfile(&text).unwrap();
        assert!(text.contains("dtaint_batch_images"), "{text}");
        assert!(text.contains("# TYPE"), "{text}");

        // The rollup is a plain MetricsRegistry of logical counters.
        let reg: dtaint_telemetry::MetricsRegistry =
            serde_json::from_str(&std::fs::read_to_string(&rollup).unwrap()).unwrap();
        assert!(reg.counter("symex.blocks_executed") > 0, "logical counters present");

        // The Chrome trace has the batch root span plus one image span.
        let tr = std::fs::read_to_string(&trace).unwrap();
        assert!(tr.contains("\"batch\""), "{tr}");
        assert!(tr.contains("\"router\""), "{tr}");

        // corpus.json now embeds the rollup and invalidation counts.
        let corpus =
            std::fs::read_to_string(dir.join(".dtaint-store/reports/corpus.json")).unwrap();
        assert!(corpus.contains("\"metrics\""), "{corpus}");
        assert!(corpus.contains("\"invalidations\""), "{corpus}");
    }

    #[test]
    fn status_and_history_inspect_a_finished_store() {
        let (dir, full, benign) = corpus_dir("stat");
        let img = dir.join("router.fwi");
        std::fs::write(&img, &benign).unwrap();
        let d = dir.to_str().unwrap().to_owned();
        let store = dir.join(".dtaint-store");
        let s = store.to_str().unwrap().to_owned();

        // Before any run the store does not exist: usage error, and
        // `status` must not create it.
        let (code, _) = run_captured(&["status", &s]);
        assert!(code.is_err(), "missing store is an error");
        assert!(!store.exists(), "status never creates a store");

        let (code, out) = run_captured(&["batch", &d]);
        assert_eq!(code, Ok(0), "{out}");
        std::fs::write(&img, &full).unwrap();
        let (code, _) = run_captured(&["batch", &d]);
        assert_eq!(code, Ok(2), "vulnerable update regresses");

        // A finished store: no live run, journal cleared, final
        // heartbeat retained.
        let (code, out) = run_captured(&["status", &s]);
        assert_eq!(code, Ok(0), "{out}");
        assert!(out.contains("no live batch"), "{out}");
        assert!(out.contains("heartbeat: done"), "{out}");
        assert!(out.contains("journal: empty"), "{out}");

        // History shows both runs, with the regression in the second.
        let (code, out) = run_captured(&["history", &s]);
        assert_eq!(code, Ok(0), "{out}");
        assert!(out.contains("2 run(s)"), "{out}");
        assert!(out.contains("1 regression(s)"), "{out}");
        assert!(out.contains("config"), "table header present: {out}");

        let (code, _) = run_captured(&["history", dir.join("nope").to_str().unwrap()]);
        assert!(code.is_err(), "missing store is an error");
    }

    #[test]
    fn diff_flags_new_vulnerable_findings_as_regressions() {
        let p = small_image_path();
        // Baseline: the scan restricted to a non-existent function, so
        // nothing is analyzed; current: the full scan. Every vulnerable
        // finding is new — a regression, exit 2. Reversed, the findings
        // are all "fixed": reportable, but not a regression.
        let (_, base_json) = run_captured(&["scan", &p, "--json", "--filter", "no-such-fn"]);
        let (_, cur_json) = run_captured(&["scan", &p, "--json"]);
        let a = tmpdir().join("reg-base.json");
        let b = tmpdir().join("reg-cur.json");
        std::fs::write(&a, &base_json).unwrap();
        std::fs::write(&b, &cur_json).unwrap();
        let (code, out) = run_captured(&["diff", a.to_str().unwrap(), b.to_str().unwrap()]);
        assert_eq!(code, Ok(2), "{out}");
        assert!(out.contains("new finding(s):"), "{out}");
        assert!(out.contains("  + "), "{out}");
        assert!(out.contains("regression(s)"), "{out}");
        assert!(out.contains("counter delta(s):"), "counters differ too: {out}");
        let (code, out) = run_captured(&["diff", b.to_str().unwrap(), a.to_str().unwrap()]);
        assert_eq!(code, Ok(0), "disappearing findings are fixes: {out}");
        assert!(out.contains("fixed finding(s):"), "{out}");
        let (code, _) = run_captured(&["diff", a.to_str().unwrap()]);
        assert!(code.is_err(), "missing current path is a usage error");
    }

    #[test]
    fn unpack_lists_and_writes_files() {
        let p = small_image_path();
        let dir = tmpdir().join("rootfs");
        let (code, out) = run_captured(&["unpack", &p, "--out", dir.to_str().unwrap()]);
        assert_eq!(code, Ok(0));
        assert!(out.contains("bin/cgibin"));
        assert!(dir.join("bin/cgibin").exists());
    }

    #[test]
    fn info_shows_signatures_and_sections() {
        let p = small_image_path();
        let (code, out) = run_captured(&["info", &p]);
        assert_eq!(code, Ok(0));
        assert!(out.contains("FwImage"));
        assert!(out.contains(".text"));
    }

    #[test]
    fn disasm_prints_listing_and_single_function() {
        let p = small_image_path();
        let (code, out) = run_captured(&["disasm", &p]);
        assert_eq!(code, Ok(0));
        assert!(out.contains("<main>:"));
        let (code, out) = run_captured(&["disasm", &p, "main"]);
        assert_eq!(code, Ok(0));
        assert!(out.contains("jal") || out.contains("bl"));
    }

    #[test]
    fn gen_writes_image_and_manifest() {
        let dest = tmpdir().join("gen2.fwi");
        // Profile 2 is small enough for a test.
        let (code, out) = run_captured(&["gen", "2", "--out", dest.to_str().unwrap()]);
        assert_eq!(code, Ok(0));
        assert!(out.contains("wrote"));
        assert!(dest.exists());
        let manifest = std::fs::read_to_string(format!("{}.truth.json", dest.display())).unwrap();
        assert!(manifest.contains("entry_fn"));
    }

    #[test]
    fn gen_corrupt_writes_a_damaged_image() {
        let dest = tmpdir().join("gen2-corrupt.fwi");
        let (code, _) = run_captured(&[
            "gen",
            "2",
            "--out",
            dest.to_str().unwrap(),
            "--corrupt",
            "dangling-symbol",
        ]);
        assert_eq!(code, Ok(0));
        let data = std::fs::read(&dest).unwrap();
        let img = extract_image(&data).unwrap();
        let bins = extract_binaries(&img).unwrap();
        assert!(bins[0].1.function("phantom").is_some(), "mutation reached the packed binary");
        let (code, _) =
            run_captured(&["gen", "2", "--out", dest.to_str().unwrap(), "--corrupt", "nonsense"]);
        assert!(code.is_err(), "unknown fault names are usage errors");
    }

    #[test]
    fn corpus_prints_yearly_stats() {
        let (code, out) = run_captured(&["corpus", "--n", "300", "--seed", "3"]);
        assert_eq!(code, Ok(0));
        assert!(out.contains("emulation success"));
        assert!(out.contains("2009"));
    }

    #[test]
    fn validate_flags_vulnerable_binaries() {
        let p = small_image_path();
        // Extract the inner binary to a file first.
        let data = std::fs::read(&p).unwrap();
        let img = extract_image(&data).unwrap();
        let bins = extract_binaries(&img).unwrap();
        let bp = tmpdir().join("cgibin.fbf");
        std::fs::write(&bp, bins[0].1.to_bytes()).unwrap();
        let (code, out) = run_captured(&["validate", bp.to_str().unwrap(), "main"]);
        assert_eq!(code, Ok(2), "{out}");
        assert!(out.contains("MemoryCorruption") || out.contains("CommandInjected"), "{out}");
    }

    #[test]
    fn defs_renders_figure6_style_summary() {
        let p = small_image_path();
        let (code, out) = run_captured(&["defs", &p, "main"]);
        assert_eq!(code, Ok(0));
        assert!(out.contains("definition pairs"), "{out}");
        assert!(out.contains("deref("), "{out}");
        let (code, _) = run_captured(&["defs", &p, "nonexistent"]);
        assert!(code.is_err());
    }

    #[test]
    fn scan_partial_coverage_prints_skip_table_and_exits_4() {
        // A phantom function whose body lies outside every section:
        // lifting it must fail, and with the scan filtered to it alone
        // there are no findings — "clean but partial", exit 4.
        let mut profile = dtaint_fwgen::table2_profiles().remove(0);
        profile.total_functions = 40;
        let fw = dtaint_fwgen::build_firmware(&profile);
        let mutant =
            dtaint_fwgen::corrupt_binary(&fw.binary, &dtaint_fwgen::BinFault::DanglingSymbol);
        let p = tmpdir().join("dangling.fbf");
        std::fs::write(&p, mutant.to_bytes()).unwrap();
        let path = p.to_string_lossy().into_owned();
        let (code, out) = run_captured(&["scan", &path, "--filter", "phantom"]);
        assert_eq!(code, Ok(4), "{out}");
        assert!(out.contains("coverage: 0/1 function(s) analyzed"), "{out}");
        assert!(out.contains("lift-failed"), "{out}");
        assert!(out.contains("phantom"), "{out}");
        // The same scan under --fail-fast aborts with the lift error.
        let (code, _) = run_captured(&["scan", &path, "--filter", "phantom", "--fail-fast"]);
        assert!(code.is_err(), "fail-fast propagates the lift failure");
        // The full unfiltered scan still finds the planted vulns: the
        // vulnerability exit code dominates the partial-coverage one.
        let (code, out) = run_captured(&["scan", &path]);
        assert_eq!(code, Ok(2), "{out}");
        assert!(out.contains("coverage:"), "{out}");
        let (code, _) = run_captured(&["scan", &path, "--keep-going", "--fail-fast"]);
        assert!(code.is_err(), "the two policies are mutually exclusive");
    }

    #[test]
    fn scan_with_validate_runs_the_emulator() {
        let p = small_image_path();
        let (code, out) = run_captured(&["scan", &p, "--validate"]);
        assert_eq!(code, Ok(2));
        assert!(out.contains("dynamic validation"), "{out}");
    }
}
