//! Taint-style vulnerability templates with ground truth.
//!
//! Each template plants one `(source, path, sink)` flow shaped after a
//! vulnerability the paper reports (Tables IV & V), optionally wrapped
//! in a chain of pass-through functions (interprocedural depth) and
//! optionally *sanitised* — guarded the way real firmware guards the
//! flow (a bounding length check for overflows, a `';'` check for
//! injections). Sanitised twins are planted alongside vulnerable flows
//! so precision is measurable against ground truth.

use crate::spec::{Arith, Callee, Cmp, FnSpec, ProgramSpec, Stmt, Val};
use serde::{Deserialize, Serialize};

/// The vulnerability shapes of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlantKind {
    /// `getenv → system` (CVE-2015-2051 shape).
    CmdiGetenvSystem,
    /// `websGetVar → system` (CVE-2017-6334 / CVE-2017-6077 shape).
    CmdiWebsgetvarSystem,
    /// `find_var → popen` (EDB-ID:43055 shape).
    CmdiFindvarPopen,
    /// `read → strncpy` with attacker-controlled length
    /// (CVE-2013-7389 first half).
    BofReadStrncpy,
    /// `getenv → sprintf` (CVE-2013-7389 second half).
    BofGetenvSprintf,
    /// `getenv → strcpy` into a fixed stack buffer (CVE-2016-5681).
    BofGetenvStrcpy,
    /// `recv → memcpy` with the received length (the paper's Figure 5).
    BofRecvMemcpy,
    /// RTSP-session `read → sscanf` reading 254 bytes into a 180-byte
    /// stack buffer (the Uniview zero-day).
    BofSscanfRtsp,
    /// `read → memcpy` into a 48-byte stack buffer (Hikvision #1).
    BofReadMemcpySmall,
    /// `read` of 2048 bytes, then an unbounded copy loop into a small
    /// stack buffer (Hikvision #2).
    BofReadLoopcopy,
    /// URL parameter copied to a stack buffer through a pointer stored
    /// in a shared structure *and* an indirect call resolved by layout
    /// similarity (Hikvision #3 — "associated with pointer alias and
    /// the similarity of data structure").
    BofUrlParamAliasIndirect,
    /// `recv → memcpy` guarded by a bound *larger than the destination
    /// buffer* (`if (n < 1024)` into a 256-byte buffer) — still
    /// exploitable; detected only by the strict-bounds extension.
    BofWeakBound,
    /// `recv → memcpy` guarded by a *symbolic* bound `if (n < y)` where
    /// `y` is loaded from a global an init function set to a constant.
    /// Syntactic judgements (paper and strict mode) cannot rate the
    /// guard; only the interval extension resolves `y` and decides
    /// whether it fits the 256-byte destination (`y = 200` sanitises,
    /// `y = 1024` does not).
    BofSymbolicBound,
    /// `recv → memcpy` behind nested selector checks. The vulnerable
    /// twin's single check matches what an init function stored; the
    /// "sanitised" twin nests contradictory checks (`sel == 5 &&
    /// sel == 7`), so its sink is dead code — reported as a false
    /// positive by every syntactic mode and suppressed only by the
    /// interval extension's feasibility pruning.
    BofInfeasiblePath,
    /// `recv → memcpy` into a 64-byte *global* (`.bss` object) with a
    /// constant guard. Stack-capacity judgements cannot rate the
    /// destination; the interval extension measures the covering object
    /// symbol instead (`n < 48` sanitises, `n < 1024` does not).
    BofGlobalDst,
    /// Counted copy loop whose trip count exceeds the 64-byte stack
    /// destination (1024 iterations). The paper's judgement accepts any
    /// counted loop as sanitised; strict/interval modes compare the trip
    /// count against the destination capacity (48 sanitises).
    BofLoopcopyOversized,
    /// Two-level pointer chain split across callees: one callee links
    /// the request object into the context (`ctx->req = req`), another
    /// links the attacker buffer into the request (`req->data = buf`),
    /// and the handler walks `ctx->req->data` to a `strcpy`. The links
    /// only meet in the *caller's* merged summary, so the single-pass
    /// store-based alias recognition misses the flow; the SSE fixpoint
    /// connects it in one forward round.
    BofAliasDeep2,
    /// Three-level chain (`ctx->req->inner->data`) whose middle link
    /// forces a second fixpoint round: the round-1 twin for the inner
    /// pair seeds the round-2 match that reaches the sink shape.
    BofAliasDeep3,
    /// Chain through a callee-held load: the nested definition
    /// `deref(deref(ctx+co)+uo) = buf` is created inside a callee that
    /// *loads* the link pointer (the field was stored by a different
    /// callee, so the load stays a symbolic name). Only the reverse SSE
    /// substitution resolves the name back to the request object the
    /// sink handler reads.
    BofAliasCalleeLoad,
    /// Offset-shifted alias: the context field holds `req + 0x10`, not
    /// `req` itself, so connecting the sink requires carrying the
    /// nonzero alias offset through the rewrite arithmetic.
    BofAliasOffset,
}

impl PlantKind {
    /// The Table I source the template uses.
    pub fn source(self) -> &'static str {
        match self {
            PlantKind::CmdiGetenvSystem
            | PlantKind::BofGetenvSprintf
            | PlantKind::BofGetenvStrcpy => "getenv",
            PlantKind::CmdiWebsgetvarSystem => "websGetVar",
            PlantKind::CmdiFindvarPopen => "find_var",
            PlantKind::BofReadStrncpy
            | PlantKind::BofSscanfRtsp
            | PlantKind::BofReadMemcpySmall
            | PlantKind::BofReadLoopcopy
            | PlantKind::BofLoopcopyOversized
            | PlantKind::BofUrlParamAliasIndirect
            | PlantKind::BofAliasDeep2
            | PlantKind::BofAliasDeep3
            | PlantKind::BofAliasCalleeLoad
            | PlantKind::BofAliasOffset => "read",
            PlantKind::BofRecvMemcpy
            | PlantKind::BofWeakBound
            | PlantKind::BofSymbolicBound
            | PlantKind::BofInfeasiblePath
            | PlantKind::BofGlobalDst => "recv",
        }
    }

    /// The Table I sink the template uses.
    pub fn sink(self) -> &'static str {
        match self {
            PlantKind::CmdiGetenvSystem | PlantKind::CmdiWebsgetvarSystem => "system",
            PlantKind::CmdiFindvarPopen => "popen",
            PlantKind::BofReadStrncpy => "strncpy",
            PlantKind::BofGetenvSprintf => "sprintf",
            PlantKind::BofGetenvStrcpy
            | PlantKind::BofUrlParamAliasIndirect
            | PlantKind::BofAliasDeep2
            | PlantKind::BofAliasDeep3
            | PlantKind::BofAliasCalleeLoad
            | PlantKind::BofAliasOffset => "strcpy",
            PlantKind::BofRecvMemcpy
            | PlantKind::BofReadMemcpySmall
            | PlantKind::BofWeakBound
            | PlantKind::BofSymbolicBound
            | PlantKind::BofInfeasiblePath
            | PlantKind::BofGlobalDst => "memcpy",
            PlantKind::BofSscanfRtsp => "sscanf",
            PlantKind::BofReadLoopcopy | PlantKind::BofLoopcopyOversized => "loop-copy",
        }
    }

    /// True for command-injection shapes.
    pub fn is_injection(self) -> bool {
        matches!(
            self,
            PlantKind::CmdiGetenvSystem
                | PlantKind::CmdiWebsgetvarSystem
                | PlantKind::CmdiFindvarPopen
        )
    }
}

/// A request to plant one flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlantSpec {
    /// The flow shape.
    pub kind: PlantKind,
    /// Unique id within the program (names functions/labels).
    pub id: String,
    /// Plant the guarded (sanitised) twin instead of the vulnerability.
    pub sanitized: bool,
    /// Number of pass-through functions between entry and sink.
    pub depth: u8,
}

impl PlantSpec {
    /// Shorthand constructor.
    pub fn new(kind: PlantKind, id: &str, sanitized: bool, depth: u8) -> PlantSpec {
        PlantSpec { kind, id: id.to_owned(), sanitized, depth }
    }
}

/// Ground truth for one planted flow.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlantedVuln {
    /// The plant id.
    pub id: String,
    /// The flow shape.
    pub kind: PlantKind,
    /// Source import name.
    pub source: String,
    /// Sink name (`loop-copy` for the structural sink).
    pub sink: String,
    /// True when the flow is guarded — a detector reporting it as a
    /// vulnerability scores a false positive.
    pub sanitized: bool,
    /// Name of the entry function of the planted flow.
    pub entry_fn: String,
}

/// Plants one flow into `spec`, returning its ground truth.
///
/// The entry function is named `vuln_<id>` (or `safe_<id>` for the
/// sanitised twin) and takes no parameters; profiles wire it into the
/// program's call tree.
pub fn plant(spec: &mut ProgramSpec, p: &PlantSpec) -> PlantedVuln {
    let prefix = if p.sanitized { "safe" } else { "vuln" };
    let entry_name = format!("{prefix}_{}", p.id);
    match p.kind {
        PlantKind::CmdiGetenvSystem => plant_cmdi(spec, p, &entry_name, "getenv", "system"),
        PlantKind::CmdiWebsgetvarSystem => plant_cmdi(spec, p, &entry_name, "websGetVar", "system"),
        PlantKind::CmdiFindvarPopen => plant_cmdi(spec, p, &entry_name, "find_var", "popen"),
        PlantKind::BofReadStrncpy => plant_length_copy(spec, p, &entry_name, "read", "strncpy"),
        PlantKind::BofRecvMemcpy => plant_length_copy(spec, p, &entry_name, "recv", "memcpy"),
        PlantKind::BofReadMemcpySmall => plant_length_copy(spec, p, &entry_name, "read", "memcpy"),
        PlantKind::BofGetenvSprintf => plant_string_copy(spec, p, &entry_name, "sprintf"),
        PlantKind::BofGetenvStrcpy => plant_string_copy(spec, p, &entry_name, "strcpy"),
        PlantKind::BofSscanfRtsp => plant_sscanf(spec, p, &entry_name),
        PlantKind::BofReadLoopcopy => plant_loopcopy(spec, p, &entry_name),
        PlantKind::BofUrlParamAliasIndirect => plant_alias_indirect(spec, p, &entry_name),
        PlantKind::BofWeakBound => plant_weak_bound(spec, p, &entry_name),
        PlantKind::BofSymbolicBound => plant_symbolic_bound(spec, p, &entry_name),
        PlantKind::BofInfeasiblePath => plant_infeasible_path(spec, p, &entry_name),
        PlantKind::BofGlobalDst => plant_global_dst(spec, p, &entry_name),
        PlantKind::BofLoopcopyOversized => plant_loopcopy_oversized(spec, p, &entry_name),
        PlantKind::BofAliasDeep2 => plant_alias_deep(spec, p, &entry_name, 2),
        PlantKind::BofAliasDeep3 => plant_alias_deep(spec, p, &entry_name, 3),
        PlantKind::BofAliasCalleeLoad => plant_alias_callee_load(spec, p, &entry_name),
        PlantKind::BofAliasOffset => plant_alias_offset(spec, p, &entry_name),
    }
    PlantedVuln {
        id: p.id.clone(),
        kind: p.kind,
        source: p.kind.source().to_owned(),
        sink: p.kind.sink().to_owned(),
        sanitized: p.sanitized,
        entry_fn: entry_name,
    }
}

/// Wraps the `sink_fn` behind `depth` pass-through functions; returns
/// the name the entry should call with the tainted value.
fn chain(spec: &mut ProgramSpec, p: &PlantSpec, sink_fn: &str) -> String {
    let mut target = sink_fn.to_owned();
    for lvl in 0..p.depth {
        let name = format!("hop{lvl}_{}", p.id);
        let mut f = FnSpec::new(&name, 1);
        f.push(Stmt::Call {
            callee: Callee::Func(target.clone()),
            args: vec![Val::Param(0)],
            ret: None,
        });
        f.push(Stmt::Return(None));
        spec.func(f);
        target = name;
    }
    target
}

/// Command injection: `v = <source>(…); [guard] <sink>(v)`.
fn plant_cmdi(spec: &mut ProgramSpec, p: &PlantSpec, entry: &str, source: &str, sink: &str) {
    let var_label = format!("var_{}", p.id);
    spec.string(&var_label, &format!("FIELD_{}", p.id));
    let mode_label = format!("mode_{}", p.id);
    if sink == "popen" {
        spec.string(&mode_label, "r");
    }

    // The sink function receives the tainted string as its parameter.
    let sink_fn = format!("run_{}", p.id);
    let mut sf = FnSpec::new(&sink_fn, 1);
    let sink_call = if sink == "popen" {
        Stmt::Call {
            callee: Callee::Import("popen".into()),
            args: vec![Val::Param(0), Val::StrAddr(mode_label.clone())],
            ret: None,
        }
    } else {
        Stmt::Call { callee: Callee::Import(sink.into()), args: vec![Val::Param(0)], ret: None }
    };
    if p.sanitized {
        // Reject strings whose first byte is the separator.
        let b = sf.local();
        sf.push(Stmt::LoadByte { dst: b, base: Val::Param(0), off: 0 });
        sf.push(Stmt::If {
            lhs: Val::Local(b),
            op: Cmp::Ne,
            rhs: Val::Const(b';' as u32),
            then: vec![sink_call],
            els: vec![],
        });
    } else {
        sf.push(sink_call);
    }
    sf.push(Stmt::Return(None));
    spec.func(sf);
    let target = chain(spec, p, &sink_fn);

    let mut e = FnSpec::new(entry, 0);
    let v = e.local();
    let source_call = match source {
        "websGetVar" => Stmt::Call {
            callee: Callee::Import("websGetVar".into()),
            args: vec![Val::Const(0), Val::StrAddr(var_label.clone()), Val::StrAddr(var_label)],
            ret: Some(v),
        },
        "find_var" => Stmt::Call {
            callee: Callee::Import("find_var".into()),
            args: vec![Val::Const(0), Val::StrAddr(var_label)],
            ret: Some(v),
        },
        _ => Stmt::Call {
            callee: Callee::Import("getenv".into()),
            args: vec![Val::StrAddr(var_label)],
            ret: Some(v),
        },
    };
    e.push(source_call);
    e.push(Stmt::Call { callee: Callee::Func(target), args: vec![Val::Local(v)], ret: None });
    e.push(Stmt::Return(None));
    spec.func(e);
}

/// Length-controlled copy: `n = <source>(…, big, N); [if n < small]
/// <sink>(small, big, n)`.
fn plant_length_copy(spec: &mut ProgramSpec, p: &PlantSpec, entry: &str, source: &str, sink: &str) {
    let (big_size, small_size) = match p.kind {
        PlantKind::BofReadMemcpySmall => (2048, 48),
        PlantKind::BofReadStrncpy => (512, 64),
        _ => (0x200, 0x100),
    };
    // Sink function takes (dst, src, n).
    let sink_fn = format!("copy_{}", p.id);
    let mut sf = FnSpec::new(&sink_fn, 3);
    let sink_call = Stmt::Call {
        callee: Callee::Import(sink.into()),
        args: vec![Val::Param(0), Val::Param(1), Val::Param(2)],
        ret: None,
    };
    if p.sanitized {
        sf.push(Stmt::If {
            lhs: Val::Param(2),
            op: Cmp::Lt,
            rhs: Val::Const(small_size),
            then: vec![sink_call],
            els: vec![],
        });
    } else {
        sf.push(sink_call);
    }
    sf.push(Stmt::Return(None));
    spec.func(sf);

    // Chain forwards all three values (use a 3-arg hop chain).
    let mut target = sink_fn.clone();
    for lvl in 0..p.depth {
        let name = format!("hop{lvl}_{}", p.id);
        let mut f = FnSpec::new(&name, 3);
        f.push(Stmt::Call {
            callee: Callee::Func(target.clone()),
            args: vec![Val::Param(0), Val::Param(1), Val::Param(2)],
            ret: None,
        });
        f.push(Stmt::Return(None));
        spec.func(f);
        target = name;
    }

    let mut e = FnSpec::new(entry, 0);
    let big = e.buf(big_size);
    let small = e.buf(small_size);
    let n = e.local();
    let source_call = match source {
        "recv" => Stmt::Call {
            callee: Callee::Import("recv".into()),
            args: vec![Val::Const(0), Val::BufAddr(big), Val::Const(big_size), Val::Const(0)],
            ret: Some(n),
        },
        _ => Stmt::Call {
            callee: Callee::Import("read".into()),
            args: vec![Val::Const(0), Val::BufAddr(big), Val::Const(big_size)],
            ret: Some(n),
        },
    };
    e.push(source_call);
    e.push(Stmt::Call {
        callee: Callee::Func(target),
        args: vec![Val::BufAddr(small), Val::BufAddr(big), Val::Local(n)],
        ret: None,
    });
    e.push(Stmt::Return(None));
    spec.func(e);
}

/// String copy from an environment value: `v = getenv(…);
/// [if *v < bound] strcpy/sprintf(dst, v)`.
fn plant_string_copy(spec: &mut ProgramSpec, p: &PlantSpec, entry: &str, sink: &str) {
    let var_label = format!("var_{}", p.id);
    spec.string(&var_label, &format!("COOKIE_{}", p.id));
    let fmt_label = format!("fmt_{}", p.id);
    if sink == "sprintf" {
        spec.string(&fmt_label, "%s");
    }

    let sink_fn = format!("copy_{}", p.id);
    let mut sf = FnSpec::new(&sink_fn, 1);
    let dst = sf.buf(152);
    let sink_call = if sink == "sprintf" {
        Stmt::Call {
            callee: Callee::Import("sprintf".into()),
            args: vec![Val::BufAddr(dst), Val::StrAddr(fmt_label), Val::Param(0)],
            ret: None,
        }
    } else {
        Stmt::Call {
            callee: Callee::Import("strcpy".into()),
            args: vec![Val::BufAddr(dst), Val::Param(0)],
            ret: None,
        }
    };
    if p.sanitized {
        // Firmware-style length-prefix check: the first byte of the
        // value must be below the buffer bound.
        let b = sf.local();
        sf.push(Stmt::LoadByte { dst: b, base: Val::Param(0), off: 0 });
        sf.push(Stmt::If {
            lhs: Val::Local(b),
            op: Cmp::Lt,
            rhs: Val::Const(64),
            then: vec![sink_call],
            els: vec![],
        });
    } else {
        sf.push(sink_call);
    }
    sf.push(Stmt::Return(None));
    spec.func(sf);
    let target = chain(spec, p, &sink_fn);

    let mut e = FnSpec::new(entry, 0);
    let v = e.local();
    e.push(Stmt::Call {
        callee: Callee::Import("getenv".into()),
        args: vec![Val::StrAddr(format!("var_{}", p.id))],
        ret: Some(v),
    });
    e.push(Stmt::Call { callee: Callee::Func(target), args: vec![Val::Local(v)], ret: None });
    e.push(Stmt::Return(None));
    spec.func(e);
}

/// The strict-bounds extension subject: a guard that exists but does
/// not fit the destination (`if (n < 1024) memcpy(dst256, …, n)`). The
/// flow is planted entirely in the entry so the destination's stack
/// capacity is visible to the checker.
fn plant_weak_bound(spec: &mut ProgramSpec, p: &PlantSpec, entry: &str) {
    let mut e = FnSpec::new(entry, 0);
    let big = e.buf(2048);
    let small = e.buf(256);
    let n = e.local();
    e.push(Stmt::Call {
        callee: Callee::Import("recv".into()),
        args: vec![Val::Const(0), Val::BufAddr(big), Val::Const(2048), Val::Const(0)],
        ret: Some(n),
    });
    // A sanitized twin uses a bound that actually fits; the vulnerable
    // form "checks" against a bound four times the buffer.
    let bound = if p.sanitized { 200 } else { 1024 };
    e.push(Stmt::If {
        lhs: Val::Local(n),
        op: Cmp::Lt,
        rhs: Val::Const(bound),
        then: vec![Stmt::Call {
            callee: Callee::Import("memcpy".into()),
            args: vec![Val::BufAddr(small), Val::BufAddr(big), Val::Local(n)],
            ret: None,
        }],
        els: vec![],
    });
    e.push(Stmt::Return(None));
    spec.func(e);
}

/// The interval-extension subject: a guard that is *symbolic* at the
/// sink (`if (n < y)` with `y` loaded from a global). An init function
/// stores the actual limit, so only a judgement that propagates values
/// through definition pairs can rate the guard. The guarded copy lives
/// in a helper so the constraint reaches the entry unsubstituted —
/// the cross-function shape firmware configuration limits take.
fn plant_symbolic_bound(spec: &mut ProgramSpec, p: &PlantSpec, entry: &str) {
    let limit = spec.global(&format!("g_limit_{}", p.id), 4);
    let init = format!("limit_{}", p.id);
    let mut inf = FnSpec::new(&init, 0);
    let bound = if p.sanitized { 200 } else { 1024 };
    inf.push(Stmt::Store { base: Val::GlobalAddr(limit.clone()), off: 0, src: Val::Const(bound) });
    inf.push(Stmt::Return(None));
    spec.func(inf);

    let helper = format!("guard_copy_{}", p.id);
    let mut hf = FnSpec::new(&helper, 3);
    let y = hf.local();
    hf.push(Stmt::Load { dst: y, base: Val::GlobalAddr(limit), off: 0 });
    hf.push(Stmt::If {
        lhs: Val::Param(2),
        op: Cmp::Lt,
        rhs: Val::Local(y),
        then: vec![Stmt::Call {
            callee: Callee::Import("memcpy".into()),
            args: vec![Val::Param(0), Val::Param(1), Val::Param(2)],
            ret: None,
        }],
        els: vec![],
    });
    hf.push(Stmt::Return(None));
    spec.func(hf);

    let mut e = FnSpec::new(entry, 0);
    let big = e.buf(2048);
    let small = e.buf(256);
    let n = e.local();
    e.push(Stmt::Call { callee: Callee::Func(init), args: vec![], ret: None });
    e.push(Stmt::Call {
        callee: Callee::Import("recv".into()),
        args: vec![Val::Const(0), Val::BufAddr(big), Val::Const(2048), Val::Const(0)],
        ret: Some(n),
    });
    e.push(Stmt::Call {
        callee: Callee::Func(helper),
        args: vec![Val::BufAddr(small), Val::BufAddr(big), Val::Local(n)],
        ret: None,
    });
    e.push(Stmt::Return(None));
    spec.func(e);
}

/// The feasibility subject: a dispatcher whose selector is a global the
/// vulnerable twin's init store agrees with. The "sanitised" twin nests
/// two contradictory checks (`sel == 5 && sel == 7`), so its copy is
/// dead code that only constraint reasoning can discard.
fn plant_infeasible_path(spec: &mut ProgramSpec, p: &PlantSpec, entry: &str) {
    let sel = spec.global(&format!("g_sel_{}", p.id), 4);
    let mut e = FnSpec::new(entry, 0);
    let big = e.buf(2048);
    let small = e.buf(256);
    let n = e.local();
    let s = e.local();
    if !p.sanitized {
        // The selector value the single check expects.
        e.push(Stmt::Store { base: Val::GlobalAddr(sel.clone()), off: 0, src: Val::Const(5) });
    }
    e.push(Stmt::Call {
        callee: Callee::Import("recv".into()),
        args: vec![Val::Const(0), Val::BufAddr(big), Val::Const(2048), Val::Const(0)],
        ret: Some(n),
    });
    e.push(Stmt::Load { dst: s, base: Val::GlobalAddr(sel), off: 0 });
    let copy = Stmt::Call {
        callee: Callee::Import("memcpy".into()),
        args: vec![Val::BufAddr(small), Val::BufAddr(big), Val::Local(n)],
        ret: None,
    };
    let body = if p.sanitized {
        vec![Stmt::If {
            lhs: Val::Local(s),
            op: Cmp::Eq,
            rhs: Val::Const(7),
            then: vec![copy],
            els: vec![],
        }]
    } else {
        vec![copy]
    };
    e.push(Stmt::If {
        lhs: Val::Local(s),
        op: Cmp::Eq,
        rhs: Val::Const(5),
        then: body,
        els: vec![],
    });
    e.push(Stmt::Return(None));
    spec.func(e);
}

/// The global-destination subject: a guarded copy into a named 64-byte
/// data object. There is no stack capacity to rate, so strict mode falls
/// back to the syntactic judgement; the interval extension measures the
/// covering object symbol instead.
fn plant_global_dst(spec: &mut ProgramSpec, p: &PlantSpec, entry: &str) {
    let dst = spec.global(&format!("g_dst_{}", p.id), 64);
    let mut e = FnSpec::new(entry, 0);
    let big = e.buf(2048);
    let n = e.local();
    e.push(Stmt::Call {
        callee: Callee::Import("recv".into()),
        args: vec![Val::Const(0), Val::BufAddr(big), Val::Const(2048), Val::Const(0)],
        ret: Some(n),
    });
    let bound = if p.sanitized { 48 } else { 1024 };
    e.push(Stmt::If {
        lhs: Val::Local(n),
        op: Cmp::Lt,
        rhs: Val::Const(bound),
        then: vec![Stmt::Call {
            callee: Callee::Import("memcpy".into()),
            args: vec![Val::GlobalAddr(dst), Val::BufAddr(big), Val::Local(n)],
            ret: None,
        }],
        els: vec![],
    });
    e.push(Stmt::Return(None));
    spec.func(e);
}

/// The counted-loop twin of [`plant_weak_bound`]: the loop bound exists
/// (so the paper's judgement accepts it) but exceeds the 64-byte stack
/// destination.
fn plant_loopcopy_oversized(spec: &mut ProgramSpec, p: &PlantSpec, entry: &str) {
    let mut e = FnSpec::new(entry, 0);
    let big = e.buf(2048);
    let small = e.buf(64);
    e.push(Stmt::Call {
        callee: Callee::Import("read".into()),
        args: vec![Val::Const(0), Val::BufAddr(big), Val::Const(2048)],
        ret: None,
    });
    let bound = if p.sanitized { 48 } else { 1024 };
    e.push(Stmt::CopyLoop {
        dst: Val::BufAddr(small),
        src: Val::BufAddr(big),
        bound: Some(Val::Const(bound)),
    });
    e.push(Stmt::Return(None));
    spec.func(e);
}

/// The Uniview RTSP shape: read 254 bytes, `sscanf(line, "%s", out)`
/// into a 180-byte stack buffer.
fn plant_sscanf(spec: &mut ProgramSpec, p: &PlantSpec, entry: &str) {
    let fmt = format!("fmt_{}", p.id);
    spec.string(&fmt, "%s");
    let mut e = FnSpec::new(entry, 0);
    let line = e.buf(254);
    let out = e.buf(180);
    let n = e.local();
    e.push(Stmt::Call {
        callee: Callee::Import("read".into()),
        args: vec![Val::Const(0), Val::BufAddr(line), Val::Const(254)],
        ret: Some(n),
    });
    let sink_call = Stmt::Call {
        callee: Callee::Import("sscanf".into()),
        args: vec![Val::BufAddr(line), Val::StrAddr(fmt), Val::BufAddr(out)],
        ret: None,
    };
    if p.sanitized {
        e.push(Stmt::If {
            lhs: Val::Local(n),
            op: Cmp::Lt,
            rhs: Val::Const(180),
            then: vec![sink_call],
            els: vec![],
        });
    } else {
        e.push(sink_call);
    }
    e.push(Stmt::Return(None));
    spec.func(e);
}

/// The Hikvision loop-copy shape: read 2048 bytes, copy into a small
/// buffer byte-by-byte until NUL (vulnerable) or counted (sanitised).
fn plant_loopcopy(spec: &mut ProgramSpec, p: &PlantSpec, entry: &str) {
    let mut e = FnSpec::new(entry, 0);
    let big = e.buf(2048);
    let small = e.buf(64);
    e.push(Stmt::Call {
        callee: Callee::Import("read".into()),
        args: vec![Val::Const(0), Val::BufAddr(big), Val::Const(2048)],
        ret: None,
    });
    let bound = if p.sanitized { Some(Val::Const(64)) } else { None };
    e.push(Stmt::CopyLoop { dst: Val::BufAddr(small), src: Val::BufAddr(big), bound });
    e.push(Stmt::Return(None));
    spec.func(e);
}

/// The Hikvision alias + indirect-call shape:
///
/// * `parse` stores its request-buffer *parameter* into a context field
///   (`ctx->url = req` — the Formula 1 alias) and `read`s into it,
/// * `install` writes a handler function pointer into another field,
/// * `dispatch` calls through the pointer (resolved by layout
///   similarity),
/// * the handler `strcpy`s `ctx->url` into a small stack buffer.
fn plant_alias_indirect(spec: &mut ProgramSpec, p: &PlantSpec, entry: &str) {
    let ctx = spec.global(&format!("g_ctx_{}", p.id), 96);
    let reqbuf = spec.global(&format!("g_req_{}", p.id), 2048);
    // Every module defines its own context struct: field offsets vary by
    // plant so distinct handler structures stay distinguishable to the
    // layout-similarity matcher (identical layouts would be a genuine
    // ambiguity). The salt counts prior alias-indirect plants in this
    // program, guaranteeing distinct layouts.
    let salt: i16 =
        4 * spec.functions.iter().filter(|f| f.name.starts_with("install_")).count() as i16;
    let fn_off = 8 + salt;
    let url_off = 0x30 + salt;
    let len_off = url_off + 4;

    let handler = format!("handle_{}", p.id);
    let mut hf = FnSpec::new(&handler, 1);
    let dst = hf.buf(64);
    let url = hf.local();
    hf.push(Stmt::Load { dst: url, base: Val::Param(0), off: url_off });
    let sink_call = Stmt::Call {
        callee: Callee::Import("strcpy".into()),
        args: vec![Val::BufAddr(dst), Val::Local(url)],
        ret: None,
    };
    if p.sanitized {
        let b = hf.local();
        hf.push(Stmt::LoadByte { dst: b, base: Val::Local(url), off: 0 });
        hf.push(Stmt::If {
            lhs: Val::Local(b),
            op: Cmp::Lt,
            rhs: Val::Const(64),
            then: vec![sink_call],
            els: vec![],
        });
    } else {
        hf.push(sink_call);
    }
    hf.push(Stmt::Return(None));
    spec.func(hf);

    let install = format!("install_{}", p.id);
    let mut inf = FnSpec::new(&install, 1);
    inf.push(Stmt::Store { base: Val::Param(0), off: fn_off, src: Val::FnAddr(handler.clone()) });
    // Touch the shared fields so the two layouts align (ctx->url, ctx->len).
    inf.push(Stmt::Store { base: Val::Param(0), off: url_off, src: Val::Const(0) });
    inf.push(Stmt::Store { base: Val::Param(0), off: len_off, src: Val::Const(0) });
    inf.push(Stmt::Return(None));
    spec.func(inf);

    let parse = format!("parse_{}", p.id);
    let mut pf = FnSpec::new(&parse, 2);
    // The alias: the request pointer parameter is stored into the field.
    pf.push(Stmt::Store { base: Val::Param(0), off: url_off, src: Val::Param(1) });
    let n = pf.local();
    pf.push(Stmt::Call {
        callee: Callee::Import("read".into()),
        args: vec![Val::Const(0), Val::Param(1), Val::Const(2048)],
        ret: Some(n),
    });
    pf.push(Stmt::Store { base: Val::Param(0), off: len_off, src: Val::Local(n) });
    pf.push(Stmt::Return(None));
    spec.func(pf);

    let dispatch = format!("dispatch_{}", p.id);
    let mut df = FnSpec::new(&dispatch, 1);
    let t = df.local();
    df.push(Stmt::Load { dst: t, base: Val::Param(0), off: url_off });
    df.push(Stmt::Load { dst: t, base: Val::Param(0), off: len_off });
    df.push(Stmt::CallIndirect {
        fn_base: Val::Param(0),
        off: fn_off,
        args: vec![Val::Param(0)],
        ret: None,
    });
    df.push(Stmt::Return(None));
    spec.func(df);

    let mut e = FnSpec::new(entry, 0);
    e.push(Stmt::Call {
        callee: Callee::Func(install),
        args: vec![Val::GlobalAddr(ctx.clone())],
        ret: None,
    });
    e.push(Stmt::Call {
        callee: Callee::Func(parse),
        args: vec![Val::GlobalAddr(ctx.clone()), Val::GlobalAddr(reqbuf)],
        ret: None,
    });
    e.push(Stmt::Call {
        callee: Callee::Func(dispatch),
        args: vec![Val::GlobalAddr(ctx)],
        ret: None,
    });
    e.push(Stmt::Return(None));
    spec.func(e);
}

/// Emits the deep-alias handler's `strcpy(dst64, p)` sink, guarded by
/// a leading length byte when sanitised (the alias-indirect idiom).
fn deep_sink(hf: &mut FnSpec, p_local: crate::spec::LocalId, sanitized: bool) {
    let dst = hf.buf(64);
    let sink_call = Stmt::Call {
        callee: Callee::Import("strcpy".into()),
        args: vec![Val::BufAddr(dst), Val::Local(p_local)],
        ret: None,
    };
    if sanitized {
        let b = hf.local();
        hf.push(Stmt::LoadByte { dst: b, base: Val::Local(p_local), off: 0 });
        hf.push(Stmt::If {
            lhs: Val::Local(b),
            op: Cmp::Lt,
            rhs: Val::Const(64),
            then: vec![sink_call],
            els: vec![],
        });
    } else {
        hf.push(sink_call);
    }
}

/// The multi-level chain shape ([`PlantKind::BofAliasDeep2`] /
/// [`PlantKind::BofAliasDeep3`]): each link `outer->field = inner` is
/// stored in its *own* callee, the attacker buffer lands at the end of
/// the chain, and the handler walks every level before the `strcpy`.
/// No single function's summary holds two links, so the connection can
/// only be made in the entry's merged summary — which the store-based
/// pass never revisits and the SSE fixpoint does.
fn plant_alias_deep(spec: &mut ProgramSpec, p: &PlantSpec, entry: &str, levels: u8) {
    let ctx = spec.global(&format!("g_dctx_{}", p.id), 96);
    let req = spec.global(&format!("g_dreq_{}", p.id), 96);
    let inner = spec.global(&format!("g_dinn_{}", p.id), 96);
    let buf = spec.global(&format!("g_dbuf_{}", p.id), 2048);
    let co: i16 = 0x28; // ctx->req
    let ro: i16 = 0x18; // req->inner (3-level only)
    let uo: i16 = 0x20; // innermost ->data

    // Link 1: ctx->req = req.
    let install = format!("install_{}", p.id);
    let mut inf = FnSpec::new(&install, 2);
    inf.push(Stmt::Store { base: Val::Param(0), off: co, src: Val::Param(1) });
    inf.push(Stmt::Return(None));
    spec.func(inf);

    // Link 2 (3-level only): req->inner = inner.
    let attach = format!("run_{}", p.id);
    if levels >= 3 {
        let mut af = FnSpec::new(&attach, 2);
        af.push(Stmt::Store { base: Val::Param(0), off: ro, src: Val::Param(1) });
        af.push(Stmt::Return(None));
        spec.func(af);
    }

    // Last link: holder->data = buf, then read() fills the buffer.
    let parse = format!("parse_{}", p.id);
    let mut pf = FnSpec::new(&parse, 2);
    pf.push(Stmt::Store { base: Val::Param(0), off: uo, src: Val::Param(1) });
    pf.push(Stmt::Call {
        callee: Callee::Import("read".into()),
        args: vec![Val::Const(0), Val::Param(1), Val::Const(2048)],
        ret: None,
    });
    pf.push(Stmt::Return(None));
    spec.func(pf);

    // The handler walks the whole chain from the context.
    let handler = format!("handle_{}", p.id);
    let mut hf = FnSpec::new(&handler, 1);
    let r = hf.local();
    hf.push(Stmt::Load { dst: r, base: Val::Param(0), off: co });
    if levels >= 3 {
        hf.push(Stmt::Load { dst: r, base: Val::Local(r), off: ro });
    }
    let pv = hf.local();
    hf.push(Stmt::Load { dst: pv, base: Val::Local(r), off: uo });
    deep_sink(&mut hf, pv, p.sanitized);
    hf.push(Stmt::Return(None));
    spec.func(hf);

    let mut e = FnSpec::new(entry, 0);
    e.push(Stmt::Call {
        callee: Callee::Func(install),
        args: vec![Val::GlobalAddr(ctx.clone()), Val::GlobalAddr(req.clone())],
        ret: None,
    });
    let (fill_holder, _) = if levels >= 3 {
        e.push(Stmt::Call {
            callee: Callee::Func(attach),
            args: vec![Val::GlobalAddr(req.clone()), Val::GlobalAddr(inner.clone())],
            ret: None,
        });
        (inner, req)
    } else {
        (req, inner)
    };
    e.push(Stmt::Call {
        callee: Callee::Func(parse),
        args: vec![Val::GlobalAddr(fill_holder), Val::GlobalAddr(buf)],
        ret: None,
    });
    e.push(Stmt::Call {
        callee: Callee::Func(handler),
        args: vec![Val::GlobalAddr(ctx)],
        ret: None,
    });
    e.push(Stmt::Return(None));
    spec.func(e);
}

/// The callee-held-load shape ([`PlantKind::BofAliasCalleeLoad`]): the
/// parser *loads* the link pointer another callee stored (`r =
/// ctx->req`, a symbolic name in its own summary) and hangs the
/// attacker buffer off it, producing the nested definition
/// `deref(deref(ctx+co)+uo) = buf`. The sink handler receives the
/// request object directly, so its tainted expression names the field
/// *without* the context detour — only the reverse SSE substitution
/// (name → value) makes the two meet.
fn plant_alias_callee_load(spec: &mut ProgramSpec, p: &PlantSpec, entry: &str) {
    let ctx = spec.global(&format!("g_cctx_{}", p.id), 96);
    let req = spec.global(&format!("g_creq_{}", p.id), 96);
    let buf = spec.global(&format!("g_cbuf_{}", p.id), 2048);
    let co: i16 = 0x28;
    let uo: i16 = 0x20;

    let install = format!("install_{}", p.id);
    let mut inf = FnSpec::new(&install, 2);
    inf.push(Stmt::Store { base: Val::Param(0), off: co, src: Val::Param(1) });
    inf.push(Stmt::Return(None));
    spec.func(inf);

    let parse = format!("parse_{}", p.id);
    let mut pf = FnSpec::new(&parse, 2);
    let r = pf.local();
    pf.push(Stmt::Load { dst: r, base: Val::Param(0), off: co });
    pf.push(Stmt::Store { base: Val::Local(r), off: uo, src: Val::Param(1) });
    pf.push(Stmt::Call {
        callee: Callee::Import("read".into()),
        args: vec![Val::Const(0), Val::Param(1), Val::Const(2048)],
        ret: None,
    });
    pf.push(Stmt::Return(None));
    spec.func(pf);

    let handler = format!("handle_{}", p.id);
    let mut hf = FnSpec::new(&handler, 1);
    let pv = hf.local();
    hf.push(Stmt::Load { dst: pv, base: Val::Param(0), off: uo });
    deep_sink(&mut hf, pv, p.sanitized);
    hf.push(Stmt::Return(None));
    spec.func(hf);

    let mut e = FnSpec::new(entry, 0);
    e.push(Stmt::Call {
        callee: Callee::Func(install),
        args: vec![Val::GlobalAddr(ctx.clone()), Val::GlobalAddr(req.clone())],
        ret: None,
    });
    e.push(Stmt::Call {
        callee: Callee::Func(parse),
        args: vec![Val::GlobalAddr(ctx), Val::GlobalAddr(buf)],
        ret: None,
    });
    e.push(Stmt::Call {
        callee: Callee::Func(handler),
        args: vec![Val::GlobalAddr(req)],
        ret: None,
    });
    e.push(Stmt::Return(None));
    spec.func(e);
}

/// The offset-shifted shape ([`PlantKind::BofAliasOffset`]): the
/// context field holds `req + 0x10`, so the alias carries a nonzero
/// offset the rewrite arithmetic must preserve when re-basing the
/// attacker-buffer definition onto the handler's walk.
fn plant_alias_offset(spec: &mut ProgramSpec, p: &PlantSpec, entry: &str) {
    let ctx = spec.global(&format!("g_octx_{}", p.id), 96);
    let req = spec.global(&format!("g_oreq_{}", p.id), 96);
    let buf = spec.global(&format!("g_obuf_{}", p.id), 2048);
    let co: i16 = 0x28;
    let shift: i16 = 0x10; // the field holds req + 0x10
    let uo: i16 = 0x20;

    let install = format!("install_{}", p.id);
    let mut inf = FnSpec::new(&install, 2);
    let t = inf.local();
    inf.push(Stmt::Bin {
        dst: t,
        op: Arith::Add,
        lhs: Val::Param(1),
        rhs: Val::Const(shift as u32),
    });
    inf.push(Stmt::Store { base: Val::Param(0), off: co, src: Val::Local(t) });
    inf.push(Stmt::Return(None));
    spec.func(inf);

    let parse = format!("parse_{}", p.id);
    let mut pf = FnSpec::new(&parse, 2);
    pf.push(Stmt::Store { base: Val::Param(0), off: shift + uo, src: Val::Param(1) });
    pf.push(Stmt::Call {
        callee: Callee::Import("read".into()),
        args: vec![Val::Const(0), Val::Param(1), Val::Const(2048)],
        ret: None,
    });
    pf.push(Stmt::Return(None));
    spec.func(pf);

    let handler = format!("handle_{}", p.id);
    let mut hf = FnSpec::new(&handler, 1);
    let r = hf.local();
    hf.push(Stmt::Load { dst: r, base: Val::Param(0), off: co });
    let pv = hf.local();
    hf.push(Stmt::Load { dst: pv, base: Val::Local(r), off: uo });
    deep_sink(&mut hf, pv, p.sanitized);
    hf.push(Stmt::Return(None));
    spec.func(hf);

    let mut e = FnSpec::new(entry, 0);
    e.push(Stmt::Call {
        callee: Callee::Func(install),
        args: vec![Val::GlobalAddr(ctx.clone()), Val::GlobalAddr(req.clone())],
        ret: None,
    });
    e.push(Stmt::Call {
        callee: Callee::Func(parse),
        args: vec![Val::GlobalAddr(req), Val::GlobalAddr(buf)],
        ret: None,
    });
    e.push(Stmt::Call {
        callee: Callee::Func(handler),
        args: vec![Val::GlobalAddr(ctx)],
        ret: None,
    });
    e.push(Stmt::Return(None));
    spec.func(e);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::compile;
    use dtaint_core::{AliasMode, Dtaint, DtaintConfig};
    use dtaint_fwbin::Arch;

    /// Every template, vulnerable form: compiled on both architectures
    /// and detected by the pipeline. The sanitised twin of the same
    /// template must produce zero vulnerabilities.
    fn all_kinds() -> Vec<PlantKind> {
        vec![
            PlantKind::CmdiGetenvSystem,
            PlantKind::CmdiWebsgetvarSystem,
            PlantKind::CmdiFindvarPopen,
            PlantKind::BofReadStrncpy,
            PlantKind::BofGetenvSprintf,
            PlantKind::BofGetenvStrcpy,
            PlantKind::BofRecvMemcpy,
            PlantKind::BofSscanfRtsp,
            PlantKind::BofReadMemcpySmall,
            PlantKind::BofReadLoopcopy,
            PlantKind::BofUrlParamAliasIndirect,
            PlantKind::BofAliasDeep2,
            PlantKind::BofAliasDeep3,
            PlantKind::BofAliasCalleeLoad,
            PlantKind::BofAliasOffset,
        ]
    }

    /// The multi-level alias kinds: detected only by the SSE fixpoint.
    fn deep_alias_kinds() -> Vec<PlantKind> {
        vec![
            PlantKind::BofAliasDeep2,
            PlantKind::BofAliasDeep3,
            PlantKind::BofAliasCalleeLoad,
            PlantKind::BofAliasOffset,
        ]
    }

    fn run_single(kind: PlantKind, sanitized: bool, depth: u8, arch: Arch) -> usize {
        let mut spec = ProgramSpec::new("t");
        let gt = plant(&mut spec, &PlantSpec::new(kind, "x1", sanitized, depth));
        // Entry shim calling the planted entry, so it is reachable.
        let mut main = FnSpec::new("main", 0);
        main.push(Stmt::Call {
            callee: Callee::Func(gt.entry_fn.clone()),
            args: vec![],
            ret: None,
        });
        main.push(Stmt::Return(None));
        spec.func(main);
        let bin = compile(&spec, arch).unwrap();
        let r = Dtaint::new().analyze(&bin, "t").unwrap();
        r.vulnerabilities()
    }

    fn run_mode(kind: PlantKind, sanitized: bool, arch: Arch, mode: AliasMode) -> usize {
        let mut spec = ProgramSpec::new("t");
        let gt = plant(&mut spec, &PlantSpec::new(kind, "x1", sanitized, 0));
        let mut main = FnSpec::new("main", 0);
        main.push(Stmt::Call {
            callee: Callee::Func(gt.entry_fn.clone()),
            args: vec![],
            ret: None,
        });
        main.push(Stmt::Return(None));
        spec.func(main);
        let bin = compile(&spec, arch).unwrap();
        let mut config = DtaintConfig::default();
        config.dataflow.alias.mode = mode;
        let r = Dtaint::with_config(config).analyze(&bin, "t").unwrap();
        r.vulnerabilities()
    }

    #[test]
    fn every_vulnerable_template_is_detected_on_arm() {
        for kind in all_kinds() {
            let v = run_single(kind, false, 0, Arch::Arm32e);
            assert!(v >= 1, "{kind:?} must be detected (got {v})");
        }
    }

    #[test]
    fn every_vulnerable_template_is_detected_on_mips() {
        for kind in all_kinds() {
            let v = run_single(kind, false, 0, Arch::Mips32e);
            assert!(v >= 1, "{kind:?} must be detected on mips (got {v})");
        }
    }

    #[test]
    fn every_sanitized_twin_is_clean_on_arm() {
        for kind in all_kinds() {
            let v = run_single(kind, true, 0, Arch::Arm32e);
            assert_eq!(v, 0, "{kind:?} sanitized twin must not be reported");
        }
    }

    #[test]
    fn every_sanitized_twin_is_clean_on_mips() {
        for kind in all_kinds() {
            let v = run_single(kind, true, 0, Arch::Mips32e);
            assert_eq!(v, 0, "{kind:?} sanitized twin must not be reported on mips");
        }
    }

    #[test]
    fn interprocedural_depth_preserves_detection() {
        for depth in [1, 2, 4] {
            let v = run_single(PlantKind::CmdiGetenvSystem, false, depth, Arch::Arm32e);
            assert!(v >= 1, "depth {depth} cmdi must survive the chain");
            let v = run_single(PlantKind::BofRecvMemcpy, false, depth, Arch::Mips32e);
            assert!(v >= 1, "depth {depth} bof must survive the chain");
        }
    }

    #[test]
    fn deep_alias_kinds_need_the_sse_fixpoint() {
        for kind in deep_alias_kinds() {
            let store = run_mode(kind, false, Arch::Arm32e, AliasMode::Store);
            assert_eq!(store, 0, "{kind:?}: the store-based pass must miss the chain");
            let sse = run_mode(kind, false, Arch::Arm32e, AliasMode::Sse);
            assert!(sse >= 1, "{kind:?}: the SSE fixpoint must connect the chain (got {sse})");
            let safe = run_mode(kind, true, Arch::Arm32e, AliasMode::Sse);
            assert_eq!(safe, 0, "{kind:?}: sanitised twin must stay clean under SSE");
        }
    }

    #[test]
    fn ground_truth_records_the_right_names() {
        let mut spec = ProgramSpec::new("t");
        let gt = plant(&mut spec, &PlantSpec::new(PlantKind::CmdiFindvarPopen, "a", false, 1));
        assert_eq!(gt.source, "find_var");
        assert_eq!(gt.sink, "popen");
        assert_eq!(gt.entry_fn, "vuln_a");
        assert!(!gt.sanitized);
        let gt = plant(&mut spec, &PlantSpec::new(PlantKind::BofReadLoopcopy, "b", true, 0));
        assert_eq!(gt.entry_fn, "safe_b");
        assert_eq!(gt.sink, "loop-copy");
    }
}
