//! Firmware profiles matching the paper's evaluation subjects.
//!
//! [`table2_profiles`] reproduces the six Table II images — vendor,
//! version, architecture, binary name, function count, and the exact
//! vulnerability mix of Tables III–V (eight previously-reported CVE
//! shapes, thirteen zero-day shapes) plus sanitised twins. For the two
//! large camera images the profile also carries the *analyzed module
//! prefixes*, matching the paper's manual extraction of the RTSP/HTTP/
//! ONVIF/ISAPI handlers.
//!
//! [`table7_programs`] provides the four Table VII subjects, including
//! an OpenSSL-shaped program whose `tls1_process_heartbeat` reproduces
//! the Heartbleed data flow of the paper's Figures 2–3 (the inlined
//! `n2s` macro reading a 16-bit length from network data).

use crate::codegen::compile;
use crate::filler::add_filler;
use crate::spec::{Arith, Callee, FnSpec, ProgramSpec, Stmt, Val};
use crate::templates::{plant, PlantKind, PlantSpec, PlantedVuln};
use dtaint_fwbin::{Arch, Binary};
use dtaint_fwimage::{Arch2, BootstrapKind, FwFile, FwImage, FwMetadata, Peripheral};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One evaluation subject.
#[derive(Debug, Clone)]
pub struct FirmwareProfile {
    /// Table II row index (1..=6); 0 for Table VII programs.
    pub index: u8,
    /// Manufacturer name.
    pub manufacturer: &'static str,
    /// Firmware version string.
    pub firmware_version: &'static str,
    /// Architecture.
    pub arch: Arch,
    /// Analyzed binary's name.
    pub binary_name: &'static str,
    /// Total functions in the binary (Table II "Functions").
    pub total_functions: usize,
    /// Module prefixes to analyze, when the paper analyzed a subset.
    pub analyzed_prefixes: Option<Vec<&'static str>>,
    /// Vulnerability plants (vulnerable and sanitised twins).
    pub plants: Vec<PlantSpec>,
    /// Extra wrapper paths per vulnerable plant (inflates the
    /// vulnerable-path count the way shared helpers do in real images).
    pub extra_paths: usize,
    /// Generation seed.
    pub seed: u64,
}

/// A generated firmware subject, ready for analysis.
#[derive(Debug, Clone)]
pub struct GeneratedFirmware {
    /// The source profile.
    pub profile: FirmwareProfile,
    /// The analyzed binary.
    pub binary: Binary,
    /// The packed firmware image containing the binary.
    pub image: FwImage,
    /// Ground truth of planted flows.
    pub ground_truth: Vec<PlantedVuln>,
}

fn spec_plant(kind: PlantKind, id: &str, sanitized: bool, depth: u8) -> PlantSpec {
    PlantSpec::new(kind, id, sanitized, depth)
}

/// The six Table II firmware images with the Tables III–V vulnerability
/// mixes.
pub fn table2_profiles() -> Vec<FirmwareProfile> {
    use PlantKind::*;
    vec![
        FirmwareProfile {
            index: 1,
            manufacturer: "D-Link",
            firmware_version: "DIR-645_1.03",
            arch: Arch::Mips32e,
            binary_name: "cgibin",
            total_functions: 237,
            analyzed_prefixes: None,
            plants: vec![
                // CVE-2013-7389: two flows.
                spec_plant(BofReadStrncpy, "cve_2013_7389a", false, 1),
                spec_plant(BofGetenvSprintf, "cve_2013_7389b", false, 1),
                // CVE-2015-2051.
                spec_plant(CmdiGetenvSystem, "cve_2015_2051", false, 2),
                // The unknown command injection (zero-day, repaired).
                spec_plant(CmdiGetenvSystem, "zeroday_cmdi", false, 1),
                // Sanitised twins exercising precision.
                spec_plant(BofGetenvStrcpy, "guarded_copy", true, 1),
                spec_plant(CmdiGetenvSystem, "guarded_cmdi", true, 0),
            ],
            extra_paths: 1,
            seed: 0x645,
        },
        FirmwareProfile {
            index: 2,
            manufacturer: "D-Link",
            firmware_version: "DIR-890L_1.03",
            arch: Arch::Arm32e,
            binary_name: "cgibin",
            total_functions: 358,
            analyzed_prefixes: None,
            plants: vec![
                // CVE-2016-5681 and the 890L variant of CVE-2015-2051.
                spec_plant(BofGetenvStrcpy, "cve_2016_5681", false, 1),
                spec_plant(CmdiGetenvSystem, "cve_2015_2051v", false, 1),
                // A two-level pointer chain split across callees: only
                // the SSE alias fixpoint connects it.
                spec_plant(BofAliasDeep2, "deep_link", false, 0),
                spec_plant(BofRecvMemcpy, "guarded_recv", true, 1),
            ],
            extra_paths: 1,
            seed: 0x890,
        },
        FirmwareProfile {
            index: 3,
            manufacturer: "Netgear",
            firmware_version: "DGN1000-V1.1.00.46",
            arch: Arch::Mips32e,
            binary_name: "setup.cgi",
            total_functions: 732,
            analyzed_prefixes: None,
            plants: vec![
                // EDB-ID:43055.
                spec_plant(CmdiFindvarPopen, "edb_43055", false, 1),
                // Four unknown command injections (Table V).
                spec_plant(CmdiGetenvSystem, "zeroday_cmdi1", false, 2),
                spec_plant(CmdiWebsgetvarSystem, "zeroday_cmdi2", false, 1),
                spec_plant(CmdiWebsgetvarSystem, "zeroday_cmdi3", false, 2),
                spec_plant(CmdiFindvarPopen, "zeroday_cmdi4", false, 0),
                // One unknown stack overflow (Table V).
                spec_plant(BofRecvMemcpy, "zeroday_bof", false, 1),
                // Sanitised twins.
                spec_plant(CmdiWebsgetvarSystem, "guarded_cmdi", true, 1),
                spec_plant(BofReadStrncpy, "guarded_bof", true, 1),
            ],
            extra_paths: 2,
            seed: 0x1000,
        },
        FirmwareProfile {
            index: 4,
            manufacturer: "Netgear",
            firmware_version: "DGN2200-V1.0.0.50",
            arch: Arch::Mips32e,
            binary_name: "httpd",
            total_functions: 796,
            analyzed_prefixes: None,
            plants: vec![
                spec_plant(CmdiWebsgetvarSystem, "cve_2017_6334", false, 2),
                spec_plant(CmdiWebsgetvarSystem, "cve_2017_6077", false, 1),
                spec_plant(CmdiWebsgetvarSystem, "guarded_host", true, 2),
                spec_plant(BofGetenvStrcpy, "guarded_copy", true, 1),
            ],
            extra_paths: 3,
            seed: 0x2200,
        },
        FirmwareProfile {
            index: 5,
            manufacturer: "Uniview",
            firmware_version: "IPC_6201",
            arch: Arch::Arm32e,
            binary_name: "mwareserver",
            total_functions: 6714,
            analyzed_prefixes: Some(vec!["rtsp_", "http_", "vuln_rtsp", "safe_rtsp"]),
            plants: vec![
                // The RTSP session sscanf zero-day.
                spec_plant(BofSscanfRtsp, "rtsp_sess", false, 0),
                spec_plant(BofSscanfRtsp, "rtsp_guarded", true, 0),
            ],
            extra_paths: 2,
            seed: 0x6201,
        },
        FirmwareProfile {
            index: 6,
            manufacturer: "Hikvision",
            firmware_version: "DS-2CD6233F",
            arch: Arch::Arm32e,
            binary_name: "centaurus",
            total_functions: 14035,
            analyzed_prefixes: Some(vec![
                "rtsp_",
                "http_",
                "onvif_",
                "isapi_",
                "vuln_",
                "safe_",
                "copy_",
                "hop",
                "run_",
                "handle_",
                "install_",
                "parse_",
                "dispatch_",
            ]),
            plants: vec![
                // Zero-day 1: read → memcpy into a 48-byte buffer.
                spec_plant(BofReadMemcpySmall, "http_hdr", false, 1),
                // Zero-day 2: two read → loop-copy overflows.
                spec_plant(BofReadLoopcopy, "rtsp_body1", false, 0),
                spec_plant(BofReadLoopcopy, "rtsp_body2", false, 0),
                // Zero-day 3: three URL-parameter flows through pointer
                // aliases and layout-matched indirect calls.
                spec_plant(BofUrlParamAliasIndirect, "isapi_url1", false, 0),
                spec_plant(BofUrlParamAliasIndirect, "isapi_url2", false, 0),
                spec_plant(BofUrlParamAliasIndirect, "onvif_url3", false, 0),
                // Multi-level pointer chains: configuration objects
                // linked across handler-module callees, reachable only
                // through the SSE alias fixpoint.
                spec_plant(BofAliasDeep2, "isapi_cfg1", false, 0),
                spec_plant(BofAliasDeep3, "onvif_cfg2", false, 0),
                spec_plant(BofAliasCalleeLoad, "http_cfg3", false, 0),
                spec_plant(BofAliasOffset, "rtsp_cfg4", false, 0),
                // Sanitised twins.
                spec_plant(BofReadLoopcopy, "rtsp_guarded", true, 0),
                spec_plant(BofUrlParamAliasIndirect, "isapi_guarded", true, 0),
                spec_plant(BofAliasDeep2, "isapi_cfg_guarded", true, 0),
            ],
            extra_paths: 3,
            seed: 0x6233,
        },
    ]
}

/// The four Table VII programs (`cgibin`, `setup.cgi`, `httpd`,
/// `openssl`), used for the DTaint-vs-baseline timing comparison.
pub fn table7_programs() -> Vec<FirmwareProfile> {
    let mut t2 = table2_profiles();
    let cgibin = t2.remove(0);
    let setup = t2.remove(1);
    let httpd = t2.remove(1);
    let openssl = FirmwareProfile {
        index: 0,
        manufacturer: "OpenSSL",
        firmware_version: "1.0.1f",
        arch: Arch::Arm32e,
        binary_name: "openssl",
        total_functions: 500,
        analyzed_prefixes: None,
        plants: vec![],
        extra_paths: 0,
        seed: 0x551,
    };
    vec![cgibin, setup, httpd, openssl]
}

/// Builds the OpenSSL/Heartbleed-shaped functions (Figures 2–3): a BIO
/// read into a record buffer carried in the connection structure, and a
/// heartbeat handler whose `memcpy` length is the inlined `n2s` of two
/// attacker bytes.
pub fn add_heartbleed(spec: &mut ProgramSpec) {
    spec.global("g_ssl", 0x120);

    // ssl3_read_n(s, n): BIO_read(s->bio, s->rbuf, n)
    let mut read_n = FnSpec::new("ssl3_read_n", 2);
    let bio = read_n.local();
    let buf = read_n.local();
    let r = read_n.local();
    read_n.push(Stmt::Load { dst: bio, base: Val::Param(0), off: 0x18 });
    read_n.push(Stmt::Load { dst: buf, base: Val::Param(0), off: 0x58 });
    read_n.push(Stmt::Call {
        callee: Callee::Import("BIO_read".into()),
        args: vec![Val::Local(bio), Val::Local(buf), Val::Param(1)],
        ret: Some(r),
    });
    read_n.push(Stmt::Store { base: Val::Param(0), off: 0x4c, src: Val::Local(r) });
    read_n.push(Stmt::Return(Some(Val::Local(r))));
    spec.func(read_n);

    // tls1_process_heartbeat(s): payload = n2s(p+1); memcpy(bp, p+3, payload)
    let mut hb = FnSpec::new("tls1_process_heartbeat", 1);
    let bp = hb.buf(0x50); // response buffer, much smaller than 64k
    let p = hb.local();
    let b1 = hb.local();
    let b2 = hb.local();
    let payload = hb.local();
    let src = hb.local();
    hb.push(Stmt::Load { dst: p, base: Val::Param(0), off: 0x58 });
    // The inlined n2s macro: payload = (p[1] << 8) | p[2].
    hb.push(Stmt::LoadByte { dst: b1, base: Val::Local(p), off: 1 });
    hb.push(Stmt::LoadByte { dst: b2, base: Val::Local(p), off: 2 });
    hb.push(Stmt::Bin { dst: b1, op: Arith::Shl, lhs: Val::Local(b1), rhs: Val::Const(8) });
    hb.push(Stmt::Bin { dst: payload, op: Arith::Or, lhs: Val::Local(b1), rhs: Val::Local(b2) });
    hb.push(Stmt::Bin { dst: src, op: Arith::Add, lhs: Val::Local(p), rhs: Val::Const(3) });
    hb.push(Stmt::Call {
        callee: Callee::Import("memcpy".into()),
        args: vec![Val::BufAddr(bp), Val::Local(src), Val::Local(payload)],
        ret: None,
    });
    hb.push(Stmt::Return(None));
    spec.func(hb);

    // ssl3_read_bytes(s): ssl3_read_n(s, 5); tls1_process_heartbeat(s)
    let mut rb = FnSpec::new("ssl3_read_bytes", 1);
    rb.push(Stmt::Call {
        callee: Callee::Func("ssl3_read_n".into()),
        args: vec![Val::Param(0), Val::Const(5)],
        ret: None,
    });
    rb.push(Stmt::Call {
        callee: Callee::Func("tls1_process_heartbeat".into()),
        args: vec![Val::Param(0)],
        ret: None,
    });
    rb.push(Stmt::Return(None));
    spec.func(rb);
}

/// Builds the complete firmware subject for a profile.
///
/// # Panics
///
/// Panics when code generation fails — profile definitions are static,
/// so a failure is a generator bug.
pub fn build_firmware(profile: &FirmwareProfile) -> GeneratedFirmware {
    let (spec, ground_truth) = build_spec(profile);
    let binary = compile(&spec, profile.arch).expect("profile compiles");
    let image = package_image(profile, &binary);
    GeneratedFirmware { profile: profile.clone(), binary, image, ground_truth }
}

/// Builds the program spec for a profile, without compiling or packing
/// it. Fully determined by the profile (seeded RNG), so two calls yield
/// identical specs — the basis for [`crate::versions`]' controlled
/// version pairs, which edit a spec before compiling.
pub fn build_spec(profile: &FirmwareProfile) -> (ProgramSpec, Vec<PlantedVuln>) {
    let mut rng = StdRng::seed_from_u64(profile.seed);
    let mut spec = ProgramSpec::new(profile.binary_name);

    // Plants first (their ids carry module prefixes for the filters).
    let mut ground_truth = Vec::new();
    for p in &profile.plants {
        ground_truth.push(plant(&mut spec, p));
    }

    // The openssl profile carries the Heartbleed functions instead of
    // template plants.
    if profile.binary_name == "openssl" {
        add_heartbleed(&mut spec);
    }

    // Extra call paths into the vulnerable entries.
    let mut wrapper_names = Vec::new();
    for k in 0..profile.extra_paths {
        for gt in ground_truth.iter().filter(|g| !g.sanitized) {
            let name = format!("alt{k}_{}", gt.id);
            let mut w = FnSpec::new(&name, 0);
            w.push(Stmt::Call {
                callee: Callee::Func(gt.entry_fn.clone()),
                args: vec![],
                ret: None,
            });
            w.push(Stmt::Return(None));
            spec.func(w);
            wrapper_names.push(name);
        }
    }

    // Fillers up to the target function count (leave room for main).
    let module_prefixes: &[&str] = match profile.analyzed_prefixes {
        Some(_) => &["isp_", "sys_", "upg_", "rtsp_", "http_"],
        None => &["lib_", "util_", "cgi_"],
    };
    let current = spec.functions.len();
    let remaining = profile.total_functions.saturating_sub(current + 1);
    let per_module = remaining / module_prefixes.len();
    let mut filler_names = Vec::new();
    for (i, prefix) in module_prefixes.iter().enumerate() {
        let n = if i + 1 == module_prefixes.len() {
            remaining - per_module * (module_prefixes.len() - 1)
        } else {
            per_module
        };
        filler_names.extend(add_filler(&mut spec, prefix, n, &mut rng));
    }

    // main wires everything together.
    let mut main = FnSpec::new("main", 0);
    for gt in &ground_truth {
        main.push(Stmt::Call {
            callee: Callee::Func(gt.entry_fn.clone()),
            args: vec![],
            ret: None,
        });
    }
    for w in &wrapper_names {
        main.push(Stmt::Call { callee: Callee::Func(w.clone()), args: vec![], ret: None });
    }
    for n in filler_names.iter().rev().take(8) {
        main.push(Stmt::Call {
            callee: Callee::Func(n.clone()),
            args: vec![Val::Const(1)],
            ret: None,
        });
    }
    main.push(Stmt::Return(None));
    spec.func(main);

    (spec, ground_truth)
}

/// Packs a compiled binary into the profile's firmware image layout
/// (metadata plus `bin/` and `etc/` files).
pub fn package_image(profile: &FirmwareProfile, binary: &Binary) -> FwImage {
    let is_camera = matches!(profile.manufacturer, "Hikvision" | "Uniview");
    FwImage {
        metadata: FwMetadata {
            vendor: profile.manufacturer.to_owned(),
            product: profile.firmware_version.split('_').next().unwrap_or("dev").to_owned(),
            version: profile.firmware_version.to_owned(),
            arch: Arch2::from(profile.arch),
            release_year: 2016,
            peripherals: if is_camera {
                vec![Peripheral::Ethernet, Peripheral::Camera { proprietary: true }]
            } else {
                vec![Peripheral::Ethernet, Peripheral::Wifi]
            },
            nvram_required: true,
            nvram_defaults_present: false,
            bootstrap: BootstrapKind::Standard,
        },
        files: vec![
            FwFile { path: format!("bin/{}", profile.binary_name), data: binary.to_bytes() },
            FwFile { path: "etc/version".into(), data: profile.firmware_version.into() },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtaint_core::{Dtaint, DtaintConfig};

    #[test]
    fn profiles_cover_the_paper_totals() {
        use crate::templates::PlantKind;
        let deep = [
            PlantKind::BofAliasDeep2,
            PlantKind::BofAliasDeep3,
            PlantKind::BofAliasCalleeLoad,
            PlantKind::BofAliasOffset,
        ];
        let profiles = table2_profiles();
        assert_eq!(profiles.len(), 6);
        // The paper's Table III count, excluding the deep-alias plants
        // added for the store-vs-SSE ablation.
        let vulnerable: usize = profiles
            .iter()
            .flat_map(|p| p.plants.iter())
            .filter(|p| !p.sanitized && !deep.contains(&p.kind))
            .count();
        assert_eq!(vulnerable, 21, "Table III reports 21 vulnerabilities");
        let deep_vulnerable: usize = profiles
            .iter()
            .flat_map(|p| p.plants.iter())
            .filter(|p| !p.sanitized && deep.contains(&p.kind))
            .count();
        assert_eq!(deep_vulnerable, 5, "five multi-level alias plants ride the SSE ablation");
        let functions: Vec<usize> = profiles.iter().map(|p| p.total_functions).collect();
        assert_eq!(functions, vec![237, 358, 732, 796, 6714, 14035]);
    }

    #[test]
    fn dir645_profile_builds_and_detects_all_plants() {
        let profile = &table2_profiles()[0];
        let fw = build_firmware(profile);
        assert_eq!(dtaint_cfg::build_all_cfgs(&fw.binary).unwrap().len(), profile.total_functions);
        let r = Dtaint::new().analyze(&fw.binary, profile.binary_name).unwrap();
        let expected = fw.ground_truth.iter().filter(|g| !g.sanitized).count();
        assert_eq!(r.vulnerabilities(), expected, "all planted vulns found, nothing else");
    }

    #[test]
    fn uniview_profile_respects_function_filter() {
        let mut profile = table2_profiles().remove(4);
        profile.total_functions = 600; // keep the test fast
        let fw = build_firmware(&profile);
        let config = DtaintConfig {
            function_filter: profile
                .analyzed_prefixes
                .clone()
                .map(|v| v.into_iter().map(str::to_owned).collect()),
            ..Default::default()
        };
        let r = Dtaint::with_config(config).analyze(&fw.binary, "mwareserver").unwrap();
        assert!(r.functions < 600, "filter restricts the analyzed set");
        assert_eq!(r.vulnerabilities(), 1, "the RTSP sscanf zero-day is found");
    }

    #[test]
    fn heartbleed_program_is_detected() {
        let mut spec = ProgramSpec::new("openssl");
        add_heartbleed(&mut spec);
        let mut main = FnSpec::new("main", 0);
        main.push(Stmt::Call {
            callee: Callee::Func("ssl3_read_bytes".into()),
            args: vec![Val::GlobalAddr("g_ssl".into())],
            ret: None,
        });
        main.push(Stmt::Return(None));
        spec.func(main);
        let bin = compile(&spec, Arch::Arm32e).unwrap();
        let r = Dtaint::new().analyze(&bin, "openssl").unwrap();
        let v = r.vulnerable_paths();
        assert!(
            v.iter().any(|f| f.sink == "memcpy" && f.sources.iter().any(|s| s.name == "BIO_read")),
            "heartbleed memcpy with BIO_read source must be found: {:?}",
            v.iter().map(|f| f.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn generated_firmware_packs_into_an_image() {
        let mut profile = table2_profiles().remove(1);
        profile.total_functions = 60;
        let fw = build_firmware(&profile);
        let packed = fw.image.pack(false);
        let img = dtaint_fwimage::extract_image(&packed).unwrap();
        let bins = dtaint_fwimage::extract_binaries(&img).unwrap();
        assert_eq!(bins.len(), 1);
        assert_eq!(bins[0].0, "bin/cgibin");
        assert_eq!(bins[0].1, fw.binary);
    }
}
