//! Seeded firmware *version pairs* for incremental-cache testing.
//!
//! [`build_version_pair`] builds a profile's spec twice (spec building
//! is fully seeded, so both copies are identical), then applies a
//! **size-preserving** edit to `k` seed-chosen filler functions in the
//! second copy: the constant in the function's leading
//! `Set { src: Const(c) }` statement is replaced by a different value
//! in the same range. Every instruction keeps its width, so unchanged
//! functions keep their addresses and raw bytes — exactly the situation
//! a warm incremental re-scan exploits. The pair records which
//! functions changed, letting tests assert that cache misses cover
//! *only* the changed functions plus their transitive callers.

use crate::codegen::compile;
use crate::profiles::{build_firmware, build_spec, package_image, FirmwareProfile};
use crate::spec::{Stmt, Val};
use crate::GeneratedFirmware;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Two builds of the same profile differing only in the bodies of
/// `changed` functions.
#[derive(Debug, Clone)]
pub struct VersionPair {
    /// The unedited build.
    pub base: GeneratedFirmware,
    /// The build with `changed` function bodies edited.
    pub updated: GeneratedFirmware,
    /// Names of the functions whose bytes differ, sorted.
    pub changed: Vec<String>,
}

/// Builds a base/updated pair for `profile`, editing up to `k` filler
/// functions chosen by `edit_seed`.
///
/// # Panics
///
/// Panics when the edited spec fails to compile — edits are
/// size-preserving constant swaps, so a failure is a generator bug.
pub fn build_version_pair(profile: &FirmwareProfile, edit_seed: u64, k: usize) -> VersionPair {
    let base = build_firmware(profile);
    let (mut spec, ground_truth) = build_spec(profile);

    // Fillers all start with `Set { dst, src: Const(c) }` (see
    // `filler::gen_function`); planted functions never do, so matching
    // on that leading statement selects exactly the filler population.
    let mut candidates: Vec<usize> = spec
        .functions
        .iter()
        .enumerate()
        .filter(|(_, f)| matches!(f.body.first(), Some(Stmt::Set { src: Val::Const(_), .. })))
        .map(|(i, _)| i)
        .collect();

    let mut rng = StdRng::seed_from_u64(edit_seed);
    let mut changed = Vec::new();
    for _ in 0..k.min(candidates.len()) {
        let pick = rng.gen_range(0..candidates.len());
        let fi = candidates.swap_remove(pick);
        let f = &mut spec.functions[fi];
        if let Some(Stmt::Set { src: Val::Const(c), .. }) = f.body.first_mut() {
            // New constant in the generator's own 1..=99 range: same
            // immediate width, so the function's size cannot change.
            let mut next = rng.gen_range(1..100u32);
            if next == *c {
                next = if *c == 99 { 1 } else { *c + 1 };
            }
            *c = next;
            changed.push(f.name.clone());
        }
    }
    changed.sort();

    let binary = compile(&spec, profile.arch).expect("edited profile compiles");
    let image = package_image(profile, &binary);
    let updated = GeneratedFirmware { profile: profile.clone(), binary, image, ground_truth };
    VersionPair { base, updated, changed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::table2_profiles;

    #[test]
    fn pair_differs_only_in_changed_functions() {
        let mut p = table2_profiles().remove(0);
        p.total_functions = p.total_functions.min(60);
        let pair = build_version_pair(&p, 7, 3);
        assert_eq!(pair.changed.len(), 3);

        let base = &pair.base.binary;
        let upd = &pair.updated.binary;
        assert_eq!(base.functions().len(), upd.functions().len());
        for (a, b) in base.functions().iter().zip(upd.functions()) {
            assert_eq!(a.name, b.name, "function order changed");
            assert_eq!(a.addr, b.addr, "{}: address moved", a.name);
            assert_eq!(a.size, b.size, "{}: size changed", a.name);
            let ba = base.bytes_at(a.addr, a.size).unwrap();
            let bb = upd.bytes_at(b.addr, b.size).unwrap();
            if pair.changed.contains(&a.name) {
                assert_ne!(ba, bb, "{}: marked changed but bytes equal", a.name);
            } else {
                assert_eq!(ba, bb, "{}: unchanged function's bytes differ", a.name);
            }
        }
    }

    #[test]
    fn zero_edits_reproduce_the_base_image() {
        let mut p = table2_profiles().remove(2);
        p.total_functions = p.total_functions.min(40);
        let pair = build_version_pair(&p, 1, 0);
        assert!(pair.changed.is_empty());
        assert_eq!(pair.base.binary.to_bytes(), pair.updated.binary.to_bytes());
    }
}
