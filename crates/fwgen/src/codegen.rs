//! Lowering the program DSL to `arm32e` / `mips32e` machine code.
//!
//! The generated code is deliberately "compiler-shaped": parameters are
//! spilled to the frame in the prologue, every statement reloads its
//! operands from the stack, conditionals compile to compare-and-branch
//! in the target dialect's idiom (flags on ARM, `SLT`+branch on MIPS),
//! and copy loops produce the exact load/store/increment/branch cycles
//! the paper's loop-copy sink detector looks for.

use crate::spec::{Arith, BufId, Callee, Cmp, FnSpec, LocalId, ProgramSpec, Stmt, Val};
use dtaint_fwbin::arm::{ArmIns, Cond};
use dtaint_fwbin::asm::Assembler;
use dtaint_fwbin::link::BinaryBuilder;
use dtaint_fwbin::mips::MipsIns;
use dtaint_fwbin::{Arch, Binary, Reg, Result};
use std::collections::BTreeSet;

/// Bytes reserved at the bottom of every frame for outgoing stack
/// arguments (arguments 5..=10 of calls).
const OUT_ARGS_BYTES: u32 = 24;

/// Compiles a program for the given architecture.
///
/// # Errors
///
/// Propagates linker errors (duplicate/undefined symbols, out-of-range
/// branches).
///
/// # Panics
///
/// Panics on DSL constructs the target cannot encode — more than four
/// register parameters, more than ten call arguments, or a variable
/// shift amount on MIPS (which has immediate shifts only). These are
/// generator bugs, not input errors.
pub fn compile(spec: &ProgramSpec, arch: Arch) -> Result<Binary> {
    let mut builder = BinaryBuilder::new(arch);
    for (label, value) in &spec.strings {
        builder.add_cstring(label, value);
    }
    for (label, size) in &spec.globals {
        builder.add_bss(label, *size);
    }
    for import in collect_imports(spec) {
        builder.add_import(&import);
    }
    for f in &spec.functions {
        let asm = FnCodegen::new(arch, f).emit();
        builder.add_function(&f.name, asm);
    }
    if spec.functions.iter().any(|f| f.name == "main") {
        builder.set_entry("main");
    }
    builder.link()
}

fn collect_imports(spec: &ProgramSpec) -> BTreeSet<String> {
    fn walk(stmts: &[Stmt], out: &mut BTreeSet<String>) {
        for s in stmts {
            match s {
                Stmt::Call { callee: Callee::Import(name), .. } => {
                    out.insert(name.clone());
                }
                Stmt::If { then, els, .. } => {
                    walk(then, out);
                    walk(els, out);
                }
                _ => {}
            }
        }
    }
    let mut out = BTreeSet::new();
    for f in &spec.functions {
        walk(&f.body, &mut out);
    }
    out
}

struct FnCodegen<'a> {
    arch: Arch,
    f: &'a FnSpec,
    asm: Assembler,
    frame: u32,
    buf_offs: Vec<u32>,
    locals_base: u32,
    params_base: u32,
    lr_off: u32,
    label_n: u32,
}

impl<'a> FnCodegen<'a> {
    fn new(arch: Arch, f: &'a FnSpec) -> Self {
        assert!(f.n_params <= 4, "{}: at most 4 register params", f.name);
        let mut off = OUT_ARGS_BYTES;
        let mut buf_offs = Vec::with_capacity(f.bufs.len());
        for &size in &f.bufs {
            buf_offs.push(off);
            off += (size + 7) & !7;
        }
        let locals_base = off;
        off += 4 * f.n_locals as u32;
        let params_base = off;
        off += 4 * 4;
        let lr_off = off;
        off += 4;
        let frame = (off + 7) & !7;
        FnCodegen {
            arch,
            f,
            asm: Assembler::new(arch),
            frame,
            buf_offs,
            locals_base,
            params_base,
            lr_off,
            label_n: 0,
        }
    }

    fn fresh_label(&mut self, tag: &str) -> String {
        self.label_n += 1;
        format!("__{tag}_{}", self.label_n)
    }

    fn scratch(&self, i: usize) -> Reg {
        self.arch.scratch_regs()[i]
    }

    fn sp(&self) -> Reg {
        self.arch.sp()
    }

    // ---- primitive emitters -------------------------------------------

    fn emit_load_word(&mut self, rt: Reg, base: Reg, off: i16) {
        match self.arch {
            Arch::Arm32e => self.asm.arm(ArmIns::Ldr { rt, rn: base, off }),
            Arch::Mips32e => self.asm.mips(MipsIns::Lw { rt, base, off }),
        }
    }

    fn emit_store_word(&mut self, rt: Reg, base: Reg, off: i16) {
        match self.arch {
            Arch::Arm32e => self.asm.arm(ArmIns::Str { rt, rn: base, off }),
            Arch::Mips32e => self.asm.mips(MipsIns::Sw { rt, base, off }),
        }
    }

    fn emit_load_byte(&mut self, rt: Reg, base: Reg, off: i16) {
        match self.arch {
            Arch::Arm32e => self.asm.arm(ArmIns::Ldrb { rt, rn: base, off }),
            Arch::Mips32e => self.asm.mips(MipsIns::Lb { rt, base, off }),
        }
    }

    fn emit_store_byte(&mut self, rt: Reg, base: Reg, off: i16) {
        match self.arch {
            Arch::Arm32e => self.asm.arm(ArmIns::Strb { rt, rn: base, off }),
            Arch::Mips32e => self.asm.mips(MipsIns::Sb { rt, base, off }),
        }
    }

    fn emit_load_half(&mut self, rt: Reg, base: Reg, off: i16) {
        match self.arch {
            Arch::Arm32e => self.asm.arm(ArmIns::Ldrh { rt, rn: base, off }),
            Arch::Mips32e => self.asm.mips(MipsIns::Lh { rt, base, off }),
        }
    }

    fn emit_store_half(&mut self, rt: Reg, base: Reg, off: i16) {
        match self.arch {
            Arch::Arm32e => self.asm.arm(ArmIns::Strh { rt, rn: base, off }),
            Arch::Mips32e => self.asm.mips(MipsIns::Sh { rt, base, off }),
        }
    }

    fn emit_add_imm(&mut self, rd: Reg, rn: Reg, imm: i16) {
        match self.arch {
            Arch::Arm32e => self.asm.arm(ArmIns::AddI { rd, rn, imm }),
            Arch::Mips32e => self.asm.mips(MipsIns::Addiu { rt: rd, rs: rn, imm }),
        }
    }

    /// Branches to `label` when `lhs <op> rhs` is **false** (the idiom
    /// for skipping a guarded block).
    fn emit_branch_unless(&mut self, lhs: Reg, op: Cmp, rhs: Reg, label: &str) {
        match self.arch {
            Arch::Arm32e => {
                self.asm.arm(ArmIns::CmpR { rn: lhs, rm: rhs });
                let cond = match op {
                    Cmp::Eq => Cond::Ne,
                    Cmp::Ne => Cond::Eq,
                    Cmp::Lt => Cond::Ge,
                    Cmp::Ge => Cond::Lt,
                    Cmp::Le => Cond::Gt,
                    Cmp::Gt => Cond::Le,
                };
                self.asm.arm_b(cond, label);
            }
            Arch::Mips32e => {
                let t = self.scratch(6);
                match op {
                    Cmp::Eq => self.asm.mips_bne(lhs, rhs, label),
                    Cmp::Ne => self.asm.mips_beq(lhs, rhs, label),
                    Cmp::Lt => {
                        // !(lhs < rhs) → slt t,lhs,rhs; beq t,$0,label
                        self.asm.mips(MipsIns::Slt { rd: t, rs: lhs, rt: rhs });
                        self.asm.mips_beq(t, Reg::ZERO, label);
                    }
                    Cmp::Ge => {
                        self.asm.mips(MipsIns::Slt { rd: t, rs: lhs, rt: rhs });
                        self.asm.mips_bne(t, Reg::ZERO, label);
                    }
                    Cmp::Le => {
                        // !(lhs <= rhs) == rhs < lhs
                        self.asm.mips(MipsIns::Slt { rd: t, rs: rhs, rt: lhs });
                        self.asm.mips_bne(t, Reg::ZERO, label);
                    }
                    Cmp::Gt => {
                        self.asm.mips(MipsIns::Slt { rd: t, rs: rhs, rt: lhs });
                        self.asm.mips_beq(t, Reg::ZERO, label);
                    }
                }
            }
        }
    }

    /// Branches to `label` when `lhs <op> rhs` is **true**.
    fn emit_branch_if(&mut self, lhs: Reg, op: Cmp, rhs: Reg, label: &str) {
        let inverse = match op {
            Cmp::Eq => Cmp::Ne,
            Cmp::Ne => Cmp::Eq,
            Cmp::Lt => Cmp::Ge,
            Cmp::Ge => Cmp::Lt,
            Cmp::Le => Cmp::Gt,
            Cmp::Gt => Cmp::Le,
        };
        self.emit_branch_unless(lhs, inverse, rhs, label);
    }

    // ---- value evaluation ---------------------------------------------

    fn local_off(&self, l: LocalId) -> i16 {
        (self.locals_base + 4 * l.0 as u32) as i16
    }

    fn param_off(&self, i: u8) -> i16 {
        (self.params_base + 4 * i as u32) as i16
    }

    fn buf_off(&self, b: BufId) -> i16 {
        self.buf_offs[b.0 as usize] as i16
    }

    fn eval(&mut self, v: &Val, rd: Reg) {
        match v {
            Val::Const(c) => self.asm.load_const(rd, *c),
            Val::Param(i) => {
                assert!(*i < self.f.n_params, "{}: param {i} out of range", self.f.name);
                let off = self.param_off(*i);
                let sp = self.sp();
                self.emit_load_word(rd, sp, off);
            }
            Val::Local(l) => {
                let off = self.local_off(*l);
                let sp = self.sp();
                self.emit_load_word(rd, sp, off);
            }
            Val::BufAddr(b) => {
                let off = self.buf_off(*b);
                let sp = self.sp();
                self.emit_add_imm(rd, sp, off);
            }
            Val::StrAddr(l) | Val::GlobalAddr(l) | Val::FnAddr(l) => self.asm.load_addr(rd, l),
        }
    }

    fn store_local(&mut self, l: LocalId, src: Reg) {
        let off = self.local_off(l);
        let sp = self.sp();
        self.emit_store_word(src, sp, off);
    }

    // ---- statements -----------------------------------------------------

    fn emit_stmts(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.emit_stmt(s);
        }
    }

    fn emit_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Set { dst, src } => {
                let r = self.scratch(0);
                self.eval(src, r);
                self.store_local(*dst, r);
            }
            Stmt::Bin { dst, op, lhs, rhs } => {
                let (a, b) = (self.scratch(0), self.scratch(1));
                self.eval(lhs, a);
                self.eval(rhs, b);
                self.emit_arith(*op, a, b, rhs);
                self.store_local(*dst, a);
            }
            Stmt::Store { base, off, src } => {
                let (b, v) = (self.scratch(0), self.scratch(1));
                self.eval(base, b);
                self.eval(src, v);
                self.emit_store_word(v, b, *off);
            }
            Stmt::Load { dst, base, off } => {
                let b = self.scratch(0);
                self.eval(base, b);
                self.emit_load_word(b, b, *off);
                self.store_local(*dst, b);
            }
            Stmt::StoreByte { base, off, src } => {
                let (b, v) = (self.scratch(0), self.scratch(1));
                self.eval(base, b);
                self.eval(src, v);
                self.emit_store_byte(v, b, *off);
            }
            Stmt::LoadByte { dst, base, off } => {
                let b = self.scratch(0);
                self.eval(base, b);
                self.emit_load_byte(b, b, *off);
                self.store_local(*dst, b);
            }
            Stmt::StoreHalf { base, off, src } => {
                let (b, v) = (self.scratch(0), self.scratch(1));
                self.eval(base, b);
                self.eval(src, v);
                self.emit_store_half(v, b, *off);
            }
            Stmt::LoadHalf { dst, base, off } => {
                let b = self.scratch(0);
                self.eval(base, b);
                self.emit_load_half(b, b, *off);
                self.store_local(*dst, b);
            }
            Stmt::Call { callee, args, ret } => {
                self.emit_args(args);
                match callee {
                    Callee::Import(n) | Callee::Func(n) => self.asm.call(n),
                }
                if let Some(l) = ret {
                    let rr = self.arch.ret_reg();
                    self.store_local(*l, rr);
                }
            }
            Stmt::CallIndirect { fn_base, off, args, ret } => {
                // Load the function pointer first (the args may clobber
                // low scratch registers).
                let fp = self.scratch(6);
                self.eval(fn_base, fp);
                self.emit_load_word(fp, fp, *off);
                self.emit_args(args);
                self.asm.call_reg(fp);
                if let Some(l) = ret {
                    let rr = self.arch.ret_reg();
                    self.store_local(*l, rr);
                }
            }
            Stmt::If { lhs, op, rhs, then, els } => {
                let (a, b) = (self.scratch(0), self.scratch(1));
                self.eval(lhs, a);
                self.eval(rhs, b);
                let else_label = self.fresh_label("else");
                let end_label = self.fresh_label("endif");
                self.emit_branch_unless(a, *op, b, &else_label);
                self.emit_stmts(then);
                self.asm.jump(&end_label);
                self.asm.label(&else_label);
                self.emit_stmts(els);
                self.asm.label(&end_label);
            }
            Stmt::CopyLoop { dst, src, bound } => {
                let (d, s) = (self.scratch(0), self.scratch(1));
                self.eval(dst, d);
                self.eval(src, s);
                let byte = self.scratch(2);
                let head = self.fresh_label("copy");
                match bound {
                    None => {
                        self.asm.label(&head);
                        self.emit_load_byte(byte, s, 0);
                        self.emit_store_byte(byte, d, 0);
                        self.emit_add_imm(s, s, 1);
                        self.emit_add_imm(d, d, 1);
                        // loop while byte != 0
                        let zero = self.scratch(3);
                        self.asm.load_const(zero, 0);
                        self.emit_branch_if(byte, Cmp::Ne, zero, &head);
                    }
                    Some(n) => {
                        // Compare the moving source pointer against an
                        // end pointer, the way compilers lower counted
                        // copies (`while (s < end)`).
                        let end = self.scratch(3);
                        self.eval(n, end);
                        match self.arch {
                            Arch::Arm32e => self.asm.arm(ArmIns::AddR { rd: end, rn: end, rm: s }),
                            Arch::Mips32e => {
                                self.asm.mips(MipsIns::Addu { rd: end, rs: end, rt: s })
                            }
                        }
                        self.asm.label(&head);
                        self.emit_load_byte(byte, s, 0);
                        self.emit_store_byte(byte, d, 0);
                        self.emit_add_imm(s, s, 1);
                        self.emit_add_imm(d, d, 1);
                        self.emit_branch_if(s, Cmp::Lt, end, &head);
                    }
                }
            }
            Stmt::Return(v) => {
                if let Some(v) = v {
                    let rr = self.arch.ret_reg();
                    self.eval(v, rr);
                }
                self.asm.jump("__epilogue");
            }
        }
    }

    fn emit_arith(&mut self, op: Arith, a: Reg, b: Reg, rhs: &Val) {
        match self.arch {
            Arch::Arm32e => {
                let ins = match op {
                    Arith::Add => ArmIns::AddR { rd: a, rn: a, rm: b },
                    Arith::Sub => ArmIns::SubR { rd: a, rn: a, rm: b },
                    Arith::Mul => ArmIns::Mul { rd: a, rn: a, rm: b },
                    Arith::And => ArmIns::AndR { rd: a, rn: a, rm: b },
                    Arith::Or => ArmIns::OrrR { rd: a, rn: a, rm: b },
                    Arith::Xor => ArmIns::EorR { rd: a, rn: a, rm: b },
                    Arith::Shl => ArmIns::LslR { rd: a, rn: a, rm: b },
                    Arith::Shr => ArmIns::LsrR { rd: a, rn: a, rm: b },
                };
                self.asm.arm(ins);
            }
            Arch::Mips32e => {
                let ins = match op {
                    Arith::Add => MipsIns::Addu { rd: a, rs: a, rt: b },
                    Arith::Sub => MipsIns::Subu { rd: a, rs: a, rt: b },
                    Arith::Mul => MipsIns::Mul { rd: a, rs: a, rt: b },
                    Arith::And => MipsIns::And { rd: a, rs: a, rt: b },
                    Arith::Or => MipsIns::Or { rd: a, rs: a, rt: b },
                    Arith::Xor => MipsIns::Xor { rd: a, rs: a, rt: b },
                    Arith::Shl | Arith::Shr => {
                        let Val::Const(sh) = rhs else {
                            panic!("mips32e has immediate shifts only");
                        };
                        let sh = (*sh & 31) as u8;
                        if op == Arith::Shl {
                            MipsIns::Sll { rd: a, rt: a, sh }
                        } else {
                            MipsIns::Srl { rd: a, rt: a, sh }
                        }
                    }
                };
                self.asm.mips(ins);
            }
        }
    }

    fn emit_args(&mut self, args: &[Val]) {
        assert!(args.len() <= 10, "at most 10 call arguments");
        // Evaluate into scratch first — argument registers may be needed
        // as sources (parameters live in the frame, so this is safe).
        let n_reg = args.len().min(4);
        for (i, a) in args.iter().take(4).enumerate() {
            let s = self.scratch(i);
            self.eval(a, s);
        }
        // Stack arguments at [SP + 0..).
        for (k, a) in args.iter().skip(4).enumerate() {
            let s = self.scratch(4);
            self.eval(a, s);
            let sp = self.sp();
            self.emit_store_word(s, sp, (4 * k) as i16);
        }
        let arg_regs = self.arch.arg_regs();
        for (i, &dst) in arg_regs.iter().take(n_reg).enumerate() {
            let s = self.scratch(i);
            self.asm.mov(dst, s);
        }
    }

    // ---- top level -------------------------------------------------------

    fn emit(mut self) -> Assembler {
        let sp = self.sp();
        let lr = self.arch.link_reg();
        // Prologue.
        match self.arch {
            Arch::Arm32e => self.asm.arm(ArmIns::SubI { rd: sp, rn: sp, imm: self.frame as i16 }),
            Arch::Mips32e => {
                self.asm.mips(MipsIns::Addiu { rt: sp, rs: sp, imm: -(self.frame as i16) })
            }
        }
        let lr_off = self.lr_off as i16;
        self.emit_store_word(lr, sp, lr_off);
        let arg_regs = self.arch.arg_regs();
        for i in 0..self.f.n_params {
            let off = self.param_off(i);
            self.emit_store_word(arg_regs[i as usize], sp, off);
        }
        // Body.
        let body = self.f.body.clone();
        self.emit_stmts(&body);
        // Epilogue.
        self.asm.label("__epilogue");
        self.emit_load_word(lr, sp, lr_off);
        match self.arch {
            Arch::Arm32e => self.asm.arm(ArmIns::AddI { rd: sp, rn: sp, imm: self.frame as i16 }),
            Arch::Mips32e => {
                self.asm.mips(MipsIns::Addiu { rt: sp, rs: sp, imm: self.frame as i16 })
            }
        }
        self.asm.ret();
        self.asm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FnSpec, ProgramSpec, Stmt, Val};
    use dtaint_core::Dtaint;

    /// A program copying an environment variable into a small stack
    /// buffer — compiles on both architectures and is detected by the
    /// full pipeline.
    fn vulnerable_program() -> ProgramSpec {
        let mut p = ProgramSpec::new("t");
        p.string("env_name", "PATH");
        let mut f = FnSpec::new("entry", 0);
        let buf = f.buf(32);
        let v = f.local();
        f.push(Stmt::Call {
            callee: Callee::Import("getenv".into()),
            args: vec![Val::StrAddr("env_name".into())],
            ret: Some(v),
        });
        f.push(Stmt::Call {
            callee: Callee::Import("strcpy".into()),
            args: vec![Val::BufAddr(buf), Val::Local(v)],
            ret: None,
        });
        f.push(Stmt::Return(None));
        p.func(f);
        p
    }

    #[test]
    fn compiles_and_detects_on_both_arches() {
        for arch in [Arch::Arm32e, Arch::Mips32e] {
            let bin = compile(&vulnerable_program(), arch).unwrap();
            assert!(bin.function("entry").is_some());
            let r = Dtaint::new().analyze(&bin, "t").unwrap();
            assert_eq!(r.vulnerabilities(), 1, "{arch}: getenv→strcpy must be found");
        }
    }

    #[test]
    fn sanitized_if_compiles_to_guarded_flow() {
        // n = recv(...); if (n < 16) memcpy(buf, src, n)
        let mut p = ProgramSpec::new("t");
        let mut f = FnSpec::new("entry", 0);
        let big = f.buf(256);
        let small = f.buf(16);
        let n = f.local();
        f.push(Stmt::Call {
            callee: Callee::Import("recv".into()),
            args: vec![Val::Const(0), Val::BufAddr(big), Val::Const(256), Val::Const(0)],
            ret: Some(n),
        });
        f.push(Stmt::If {
            lhs: Val::Local(n),
            op: Cmp::Lt,
            rhs: Val::Const(16),
            then: vec![Stmt::Call {
                callee: Callee::Import("memcpy".into()),
                args: vec![Val::BufAddr(small), Val::BufAddr(big), Val::Local(n)],
                ret: None,
            }],
            els: vec![],
        });
        f.push(Stmt::Return(None));
        p.func(f);
        for arch in [Arch::Arm32e, Arch::Mips32e] {
            let bin = compile(&p, arch).unwrap();
            let r = Dtaint::new().analyze(&bin, "t").unwrap();
            assert_eq!(r.vulnerabilities(), 0, "{arch}: guarded memcpy is sanitized");
            assert!(r.findings.iter().any(|f| f.sanitized()), "{arch}: path still observed");
        }
    }

    #[test]
    fn copy_loop_produces_loop_copy_sink() {
        let mut p = ProgramSpec::new("t");
        let mut f = FnSpec::new("entry", 0);
        let big = f.buf(2048);
        let small = f.buf(48);
        let n = f.local();
        f.push(Stmt::Call {
            callee: Callee::Import("read".into()),
            args: vec![Val::Const(0), Val::BufAddr(big), Val::Const(2048)],
            ret: Some(n),
        });
        f.push(Stmt::CopyLoop { dst: Val::BufAddr(small), src: Val::BufAddr(big), bound: None });
        f.push(Stmt::Return(None));
        p.func(f);
        for arch in [Arch::Arm32e, Arch::Mips32e] {
            let bin = compile(&p, arch).unwrap();
            let r = Dtaint::new().analyze(&bin, "t").unwrap();
            let loopy: Vec<_> =
                r.vulnerable_paths().into_iter().filter(|f| f.sink == "loop-copy").collect();
            assert!(!loopy.is_empty(), "{arch}: unbounded loop copy must be flagged");
        }
    }

    #[test]
    fn bounded_copy_loop_is_sanitized() {
        let mut p = ProgramSpec::new("t");
        let mut f = FnSpec::new("entry", 0);
        let big = f.buf(2048);
        let small = f.buf(48);
        f.push(Stmt::Call {
            callee: Callee::Import("read".into()),
            args: vec![Val::Const(0), Val::BufAddr(big), Val::Const(2048)],
            ret: None,
        });
        f.push(Stmt::CopyLoop {
            dst: Val::BufAddr(small),
            src: Val::BufAddr(big),
            bound: Some(Val::Const(48)),
        });
        f.push(Stmt::Return(None));
        p.func(f);
        for arch in [Arch::Arm32e, Arch::Mips32e] {
            let bin = compile(&p, arch).unwrap();
            let r = Dtaint::new().analyze(&bin, "t").unwrap();
            assert!(
                !r.vulnerable_paths().iter().any(|f| f.sink == "loop-copy"),
                "{arch}: counted copy loop is not a vulnerability"
            );
        }
    }

    #[test]
    fn cross_function_params_flow() {
        // entry: v = getenv(..); helper(v);  helper(p0): system(p0)
        let mut p = ProgramSpec::new("t");
        p.string("name", "CMD");
        let mut helper = FnSpec::new("helper", 1);
        helper.push(Stmt::Call {
            callee: Callee::Import("system".into()),
            args: vec![Val::Param(0)],
            ret: None,
        });
        helper.push(Stmt::Return(None));
        let mut entry = FnSpec::new("entry", 0);
        let v = entry.local();
        entry.push(Stmt::Call {
            callee: Callee::Import("getenv".into()),
            args: vec![Val::StrAddr("name".into())],
            ret: Some(v),
        });
        entry.push(Stmt::Call {
            callee: Callee::Func("helper".into()),
            args: vec![Val::Local(v)],
            ret: None,
        });
        entry.push(Stmt::Return(None));
        p.func(entry);
        p.func(helper);
        for arch in [Arch::Arm32e, Arch::Mips32e] {
            let bin = compile(&p, arch).unwrap();
            let r = Dtaint::new().analyze(&bin, "t").unwrap();
            assert_eq!(r.vulnerabilities(), 1, "{arch}");
            assert_eq!(r.vulnerable_paths()[0].sink_fn, "helper");
        }
    }

    #[test]
    fn indirect_call_dispatch_compiles_and_resolves() {
        // install(ctx): ctx->fn = &handler; ctx->buf = getenv(..)
        // dispatch(ctx): uses ctx fields, then (*ctx->fn)(ctx)
        // handler(ctx): system(ctx->buf)
        let mut p = ProgramSpec::new("t");
        p.string("name", "CMD");
        p.global("g_ctx", 64);

        let mut handler = FnSpec::new("handler", 1);
        let cmd = handler.local();
        handler.push(Stmt::Load { dst: cmd, base: Val::Param(0), off: 0x10 });
        handler.push(Stmt::Call {
            callee: Callee::Import("system".into()),
            args: vec![Val::Local(cmd)],
            ret: None,
        });
        handler.push(Stmt::Return(None));

        let mut install = FnSpec::new("install", 1);
        let v = install.local();
        install.push(Stmt::Store {
            base: Val::Param(0),
            off: 8,
            src: Val::FnAddr("handler".into()),
        });
        install.push(Stmt::Call {
            callee: Callee::Import("getenv".into()),
            args: vec![Val::StrAddr("name".into())],
            ret: Some(v),
        });
        install.push(Stmt::Store { base: Val::Param(0), off: 0x10, src: Val::Local(v) });
        install.push(Stmt::Return(None));

        let mut dispatch = FnSpec::new("dispatch", 1);
        let tmp = dispatch.local();
        dispatch.push(Stmt::Load { dst: tmp, base: Val::Param(0), off: 0x10 });
        dispatch.push(Stmt::CallIndirect {
            fn_base: Val::Param(0),
            off: 8,
            args: vec![Val::Param(0)],
            ret: None,
        });
        dispatch.push(Stmt::Return(None));

        let mut entry = FnSpec::new("entry", 0);
        entry.push(Stmt::Call {
            callee: Callee::Func("install".into()),
            args: vec![Val::GlobalAddr("g_ctx".into())],
            ret: None,
        });
        entry.push(Stmt::Call {
            callee: Callee::Func("dispatch".into()),
            args: vec![Val::GlobalAddr("g_ctx".into())],
            ret: None,
        });
        entry.push(Stmt::Return(None));

        p.func(entry);
        p.func(install);
        p.func(dispatch);
        p.func(handler);
        for arch in [Arch::Arm32e, Arch::Mips32e] {
            let bin = compile(&p, arch).unwrap();
            let r = Dtaint::new().analyze(&bin, "t").unwrap();
            assert!(r.resolved_indirect >= 1, "{arch}: indirect call resolved");
        }
    }

    #[test]
    fn stack_arguments_reach_the_callee() {
        // callee(p0..p3) + 2 stack args; returns arg5 via memory read.
        let mut p = ProgramSpec::new("t");
        let mut many = FnSpec::new("many", 4);
        // Return p0 + p3 (register args exercise).
        let acc = many.local();
        many.push(Stmt::Bin { dst: acc, op: Arith::Add, lhs: Val::Param(0), rhs: Val::Param(3) });
        many.push(Stmt::Return(Some(Val::Local(acc))));
        let mut entry = FnSpec::new("entry", 0);
        let r = entry.local();
        entry.push(Stmt::Call {
            callee: Callee::Func("many".into()),
            args: vec![
                Val::Const(1),
                Val::Const(2),
                Val::Const(3),
                Val::Const(4),
                Val::Const(5),
                Val::Const(6),
            ],
            ret: Some(r),
        });
        entry.push(Stmt::Return(Some(Val::Local(r))));
        p.func(entry);
        p.func(many);
        for arch in [Arch::Arm32e, Arch::Mips32e] {
            let bin = compile(&p, arch).unwrap();
            assert!(bin.function("many").is_some(), "{arch}");
        }
    }
}
