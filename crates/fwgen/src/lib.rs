//! Synthetic firmware generation with planted ground truth.
//!
//! The paper evaluates DTaint on six proprietary vendor images
//! (Table II) that cannot be redistributed. This crate substitutes them
//! with *generated* firmware whose statistical shape matches the paper's
//! — function counts, block counts, call-graph edge densities, source/
//! sink mixes — and whose vulnerabilities are **planted with ground
//! truth**, so detection results can be scored exactly:
//!
//! * [`spec`] — a C-shaped program DSL,
//! * [`codegen`] — lowering to `arm32e`/`mips32e` machine code,
//! * [`templates`] — taint-style vulnerability templates (every
//!   source/sink pair of Tables IV & V, loop copies, alias-carried and
//!   indirect-call-carried flows) plus their sanitised twins,
//! * [`filler`] — benign filler functions for realistic program sizes,
//! * [`profiles`] — the six Table II firmware images and the four
//!   Table VII programs (including an OpenSSL/Heartbleed-shaped one).

pub mod codegen;
pub mod filler;
pub mod mutate;
pub mod profiles;
pub mod spec;
pub mod templates;
pub mod versions;

pub use codegen::compile;
pub use mutate::{
    corrupt_binary, corrupt_bytes, fbf_fault_corpus, fwi_fault_corpus, BinFault, ByteFault, Rng64,
};
pub use profiles::{
    build_firmware, build_spec, package_image, table2_profiles, table7_programs, FirmwareProfile,
    GeneratedFirmware,
};
pub use templates::{PlantKind, PlantSpec, PlantedVuln};
pub use versions::{build_version_pair, VersionPair};
