//! Benign filler functions that give generated firmware realistic size.
//!
//! Table II's binaries average roughly 14 basic blocks and 3–5 call
//! edges per function. Filler functions reproduce those densities:
//! nested conditionals, the occasional bounded copy loop, arithmetic
//! over locals, calls to benign library imports and to previously
//! generated filler functions (keeping the call graph acyclic).

use crate::spec::{Arith, Callee, Cmp, FnSpec, ProgramSpec, Stmt, Val};
use rand::rngs::StdRng;
use rand::Rng;

/// Benign imports fillers may call.
const BENIGN_IMPORTS: &[&str] = &["strlen", "strcmp", "memset", "printf", "atoi", "malloc"];

/// Appends `n` filler functions named `{prefix}fn{i}` to the program,
/// returning their names. Functions only call *earlier* fillers (no
/// recursion) and benign imports.
pub fn add_filler(spec: &mut ProgramSpec, prefix: &str, n: usize, rng: &mut StdRng) -> Vec<String> {
    let fmt_label = format!("{prefix}fmt");
    if n > 0 && !spec.strings.iter().any(|(l, _)| *l == fmt_label) {
        spec.string(&fmt_label, "%d");
    }
    let mut names = Vec::with_capacity(n);
    for i in 0..n {
        let name = format!("{prefix}fn{i}");
        let f = gen_function(&name, &names, &fmt_label, rng);
        spec.func(f);
        names.push(name);
    }
    names
}

fn gen_function(name: &str, earlier: &[String], fmt_label: &str, rng: &mut StdRng) -> FnSpec {
    let n_params = rng.gen_range(0..=2);
    let mut f = FnSpec::new(name, n_params);
    let buf = f.buf(rng.gen_range(2..8) * 16);
    let a = f.local();
    let b = f.local();
    let r = f.local();

    f.push(Stmt::Set { dst: a, src: Val::Const(rng.gen_range(1..100)) });
    if n_params > 0 {
        f.push(Stmt::Set { dst: b, src: Val::Param(0) });
    } else {
        f.push(Stmt::Set { dst: b, src: Val::Const(rng.gen_range(1..50)) });
    }

    // Benign memory initialisation.
    f.push(Stmt::Call {
        callee: Callee::Import("memset".into()),
        args: vec![Val::BufAddr(buf), Val::Const(0), Val::Const(16)],
        ret: None,
    });

    // A few conditional diamonds with arithmetic and calls inside.
    let n_ifs: u32 = rng.gen_range(2..=4);
    for k in 0..n_ifs {
        let op = match rng.gen_range(0..4) {
            0 => Cmp::Lt,
            1 => Cmp::Eq,
            2 => Cmp::Gt,
            _ => Cmp::Ne,
        };
        let arith = match rng.gen_range(0..5) {
            0 => Arith::Add,
            1 => Arith::Sub,
            2 => Arith::Mul,
            3 => Arith::Xor,
            _ => Arith::And,
        };
        let mut then =
            vec![Stmt::Bin { dst: r, op: arith, lhs: Val::Local(a), rhs: Val::Local(b) }];
        let mut els =
            vec![Stmt::Bin { dst: r, op: Arith::Add, lhs: Val::Local(b), rhs: Val::Const(k + 1) }];
        // Calls: to an earlier filler or a benign import.
        if !earlier.is_empty() && rng.gen_bool(0.7) {
            let callee = earlier[rng.gen_range(0..earlier.len())].clone();
            then.push(Stmt::Call {
                callee: Callee::Func(callee),
                args: vec![Val::Local(r)],
                ret: Some(a),
            });
        }
        if rng.gen_bool(0.6) {
            let imp = BENIGN_IMPORTS[rng.gen_range(0..BENIGN_IMPORTS.len())];
            let call = match imp {
                "printf" => Stmt::Call {
                    callee: Callee::Import("printf".into()),
                    args: vec![Val::StrAddr(fmt_label.to_owned()), Val::Local(r)],
                    ret: None,
                },
                "memset" => Stmt::Call {
                    callee: Callee::Import("memset".into()),
                    args: vec![Val::BufAddr(buf), Val::Const(0), Val::Const(8)],
                    ret: None,
                },
                _ => Stmt::Call {
                    callee: Callee::Import(imp.into()),
                    args: vec![Val::BufAddr(buf)],
                    ret: Some(b),
                },
            };
            els.push(call);
        }
        f.push(Stmt::If {
            lhs: Val::Local(a),
            op,
            rhs: Val::Const(rng.gen_range(1..64)),
            then,
            els,
        });
    }

    // Occasionally a benign, bounded copy within the local buffer.
    if rng.gen_bool(0.25) {
        f.push(Stmt::CopyLoop {
            dst: Val::BufAddr(buf),
            src: Val::BufAddr(buf),
            bound: Some(Val::Const(8)),
        });
    }

    f.push(Stmt::Return(Some(Val::Local(r))));
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::compile;
    use dtaint_core::Dtaint;
    use dtaint_fwbin::Arch;
    use rand::SeedableRng;

    #[test]
    fn fillers_compile_and_are_benign() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut spec = ProgramSpec::new("fill");
        let names = add_filler(&mut spec, "lib_", 30, &mut rng);
        assert_eq!(names.len(), 30);
        // Entry calling the last few fillers so everything is reachable.
        let mut main = FnSpec::new("main", 0);
        for n in names.iter().rev().take(3) {
            main.push(Stmt::Call {
                callee: Callee::Func(n.clone()),
                args: vec![Val::Const(1)],
                ret: None,
            });
        }
        main.push(Stmt::Return(None));
        spec.func(main);
        for arch in [Arch::Arm32e, Arch::Mips32e] {
            let bin = compile(&spec, arch).unwrap();
            let r = Dtaint::new().analyze(&bin, "fill").unwrap();
            assert_eq!(r.vulnerabilities(), 0, "{arch}: filler must be benign");
        }
    }

    #[test]
    fn filler_generation_is_deterministic() {
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut spec = ProgramSpec::new("x");
            add_filler(&mut spec, "f_", 10, &mut rng);
            spec
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }

    #[test]
    fn filler_call_graph_is_acyclic_by_construction() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut spec = ProgramSpec::new("x");
        let names = add_filler(&mut spec, "g_", 20, &mut rng);
        // Each function may only reference earlier names.
        for (i, f) in spec.functions.iter().enumerate() {
            fn callees(stmts: &[Stmt], out: &mut Vec<String>) {
                for s in stmts {
                    match s {
                        Stmt::Call { callee: Callee::Func(n), .. } => out.push(n.clone()),
                        Stmt::If { then, els, .. } => {
                            callees(then, out);
                            callees(els, out);
                        }
                        _ => {}
                    }
                }
            }
            let mut cs = Vec::new();
            callees(&f.body, &mut cs);
            for c in cs {
                let j = names.iter().position(|n| *n == c).unwrap();
                assert!(j < i, "{} calls later function {}", f.name, c);
            }
        }
    }
}
