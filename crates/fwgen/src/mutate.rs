//! Fault injection: deterministic corruption of FBF binaries and FWI
//! containers.
//!
//! Real firmware images are full of hand-written assembly, data
//! misclassified as code, and vendor packing quirks (§V-A of the
//! paper); a scanner that assumes well-formed inputs dies on the first
//! of them. This module produces the *mutation corpus* the
//! fault-tolerance layer is tested against: every operator is a pure
//! function of its inputs (seeded xorshift, no ambient randomness), so
//! a failing corpus entry can be replayed bit-for-bit.
//!
//! Two corruption layers:
//!
//! * [`ByteFault`] / [`corrupt_bytes`] — format-agnostic damage to the
//!   serialized blob (truncation, magic clobbering, random bit flips).
//!   These mostly make the container unparseable; the parser must
//!   return a typed error, never panic.
//! * [`BinFault`] / [`corrupt_binary`] — structural damage to a parsed
//!   [`Binary`] that re-serializes cleanly (garbage opcode words inside
//!   one function, lying section sizes, address-wrapping or overlapping
//!   symbols). These produce images that *parse* but contain functions
//!   the analysis cannot digest; the scanner must downgrade exactly
//!   those functions and leave the rest of the report untouched.
//!
//! [`fbf_fault_corpus`] and [`fwi_fault_corpus`] bundle the standard
//! operator sweep into named corpora for the integration suite and the
//! CI smoke step.

use dtaint_fwbin::fbf::{Section, SectionKind, Symbol, SymbolKind};
use dtaint_fwbin::Binary;
use dtaint_fwimage::FwImage;

/// Minimal xorshift64* generator — deterministic, dependency-free, and
/// good enough for fault placement (not for statistics).
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator; a zero seed is remapped (xorshift fixpoint).
    pub fn new(seed: u64) -> Self {
        Rng64 { state: if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed } }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform-ish value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Format-agnostic corruption of a serialized blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ByteFault {
    /// Keep only the first `keep` bytes.
    Truncate {
        /// Bytes to keep from the front.
        keep: usize,
    },
    /// Overwrite the 4-byte magic with `0xff`.
    BadMagic,
    /// Flip `flips` random bits chosen by a seeded generator.
    BitFlips {
        /// Generator seed (same seed, same input → same damage).
        seed: u64,
        /// Number of single-bit flips.
        flips: u32,
    },
    /// Flip exactly one chosen bit — the surgical variant the store
    /// salvage proptests use when the damaged span must be computable
    /// (a random flip can land in a checksum, a blob, or a header, each
    /// with a different expected salvage count).
    FlipAt {
        /// Byte offset (out-of-range offsets are a no-op).
        offset: usize,
        /// Bit index `0..8`.
        bit: u8,
    },
}

/// Applies a [`ByteFault`] to a copy of `data`.
pub fn corrupt_bytes(data: &[u8], fault: &ByteFault) -> Vec<u8> {
    let mut out = data.to_vec();
    match fault {
        ByteFault::Truncate { keep } => out.truncate(*keep),
        ByteFault::BadMagic => {
            for b in out.iter_mut().take(4) {
                *b = 0xff;
            }
        }
        ByteFault::BitFlips { seed, flips } => {
            if !out.is_empty() {
                let mut rng = Rng64::new(*seed);
                for _ in 0..*flips {
                    let byte = rng.below(out.len() as u64) as usize;
                    let bit = rng.below(8) as u8;
                    out[byte] ^= 1 << bit;
                }
            }
        }
        ByteFault::FlipAt { offset, bit } => {
            if let Some(b) = out.get_mut(*offset) {
                *b ^= 1 << (bit % 8);
            }
        }
    }
    out
}

/// The standard damage sweep over a *store artifact* (a `DTC2` summary
/// cache, a `findings.json`, a journal): truncations at several depths,
/// a clobbered magic, and seeded bit flips. Store files carry their own
/// integrity metadata, so — unlike the firmware corpora above — the
/// reader is expected to *recover* (salvage intact cache entries,
/// quarantine the db, drop the torn journal tail), never merely reject.
pub fn store_fault_corpus(bytes: &[u8], seed: u64) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = Vec::new();
    for keep in [0, 7, bytes.len() / 4, bytes.len() / 2, bytes.len().saturating_sub(3)] {
        out.push((format!("truncate-{keep}"), corrupt_bytes(bytes, &ByteFault::Truncate { keep })));
    }
    out.push(("bad-magic".into(), corrupt_bytes(bytes, &ByteFault::BadMagic)));
    for round in 0..4u64 {
        let fault = ByteFault::BitFlips { seed: seed.wrapping_add(round), flips: 3 };
        out.push((format!("bit-flips-{round}"), corrupt_bytes(bytes, &fault)));
    }
    if !bytes.is_empty() {
        let mut rng = Rng64::new(seed ^ 0xD7C2);
        for round in 0..4u64 {
            let offset = rng.below(bytes.len() as u64) as usize;
            let bit = rng.below(8) as u8;
            out.push((
                format!("flip-at-{round}"),
                corrupt_bytes(bytes, &ByteFault::FlipAt { offset, bit }),
            ));
        }
    }
    out
}

/// Structural corruption of a parsed FBF binary. The mutant
/// re-serializes and (except where noted) re-parses cleanly — the
/// damage surfaces later, inside the analysis of the affected function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinFault {
    /// Overwrite the body of the `index`-th function symbol (address
    /// order) with seeded garbage words — the "data misclassified as
    /// code" case.
    GarbageOpcodes {
        /// Which function (by position in [`Binary::functions`]).
        index: usize,
        /// Garbage-word generator seed.
        seed: u64,
    },
    /// Make the `index`-th section claim a size that wraps the 32-bit
    /// address space. The parser must reject this
    /// ([`dtaint_fwbin::Error::SectionOutOfRange`]).
    LyingSectionSize {
        /// Which section.
        index: usize,
    },
    /// Give the `index`-th symbol an address range that wraps the
    /// address space. The parser must reject this
    /// ([`dtaint_fwbin::Error::BadSymbol`]).
    WrappingSymbol {
        /// Which symbol.
        index: usize,
    },
    /// Extend the first function symbol so it overlaps the second —
    /// both still parse, and the lifter sees one function running into
    /// another's body.
    OverlappingSymbols,
    /// Append a function symbol whose body lies outside every section —
    /// lifting it must fail, not panic.
    DanglingSymbol,
}

/// Applies a [`BinFault`] to a copy of `bin`.
pub fn corrupt_binary(bin: &Binary, fault: &BinFault) -> Binary {
    let mut out = bin.clone();
    match fault {
        BinFault::GarbageOpcodes { index, seed } => {
            let funcs = out.functions();
            if let Some(f) = funcs.get(*index) {
                let (addr, size) = (f.addr, f.size);
                let mut rng = Rng64::new(*seed);
                if let Some(text) = out
                    .sections
                    .iter_mut()
                    .find(|s| s.kind == SectionKind::Text && s.contains(addr))
                {
                    let start = (addr - text.addr) as usize;
                    let end = (start + size as usize).min(text.data.len());
                    for chunk in text.data[start..end].chunks_mut(4) {
                        let word = rng.next_u64().to_le_bytes();
                        let n = chunk.len();
                        chunk.copy_from_slice(&word[..n]);
                    }
                }
            }
        }
        BinFault::LyingSectionSize { index } => {
            if let Some(s) = out.sections.get_mut(*index) {
                s.size = u32::MAX - s.addr / 2;
            }
        }
        BinFault::WrappingSymbol { index } => {
            if let Some(s) = out.symbols.get_mut(*index) {
                s.addr = u32::MAX - 4;
                s.size = 0x100;
            }
        }
        BinFault::OverlappingSymbols => {
            let funcs = out.functions();
            if funcs.len() >= 2 {
                let (first, second) = (funcs[0].addr, funcs[1].addr);
                let span = second.saturating_sub(first) + 8;
                if let Some(s) = out.symbols.iter_mut().find(|s| s.addr == first) {
                    s.size = span;
                }
            }
        }
        BinFault::DanglingSymbol => {
            let end = out.sections.iter().map(|s| s.addr.saturating_add(s.size)).max().unwrap_or(0);
            out.symbols.push(Symbol {
                name: "phantom".into(),
                addr: end.saturating_add(0x1000),
                size: 16,
                kind: SymbolKind::Function,
            });
        }
    }
    out
}

/// The standard byte-level + structural sweep over one FBF binary,
/// as named serialized mutants.
pub fn fbf_fault_corpus(bin: &Binary, seed: u64) -> Vec<(String, Vec<u8>)> {
    let bytes = bin.to_bytes();
    let mut out: Vec<(String, Vec<u8>)> = Vec::new();
    for keep in [0, 3, bytes.len() / 3, bytes.len().saturating_sub(5)] {
        out.push((
            format!("truncate-{keep}"),
            corrupt_bytes(&bytes, &ByteFault::Truncate { keep }),
        ));
    }
    out.push(("bad-magic".into(), corrupt_bytes(&bytes, &ByteFault::BadMagic)));
    for round in 0..4u64 {
        let fault = ByteFault::BitFlips { seed: seed.wrapping_add(round), flips: 8 };
        out.push((format!("bit-flips-{round}"), corrupt_bytes(&bytes, &fault)));
    }
    let n_funcs = bin.functions().len();
    for index in [0, n_funcs / 2, n_funcs.saturating_sub(1)] {
        let fault = BinFault::GarbageOpcodes { index, seed };
        out.push((format!("garbage-fn-{index}"), corrupt_binary(bin, &fault).to_bytes()));
    }
    out.push((
        "lying-section".into(),
        corrupt_binary(bin, &BinFault::LyingSectionSize { index: 0 }).to_bytes(),
    ));
    out.push((
        "wrapping-symbol".into(),
        corrupt_binary(bin, &BinFault::WrappingSymbol { index: 0 }).to_bytes(),
    ));
    out.push((
        "overlapping-symbols".into(),
        corrupt_binary(bin, &BinFault::OverlappingSymbols).to_bytes(),
    ));
    out.push(("dangling-symbol".into(), corrupt_binary(bin, &BinFault::DanglingSymbol).to_bytes()));
    out
}

/// The standard sweep over a packed FWI image: container-level byte
/// damage plus every [`fbf_fault_corpus`] mutant of each executable,
/// re-packed into an otherwise pristine image.
pub fn fwi_fault_corpus(img: &FwImage, seed: u64) -> Vec<(String, Vec<u8>)> {
    let packed = img.pack(false);
    let mut out: Vec<(String, Vec<u8>)> = Vec::new();
    for keep in [0, 4, packed.len() / 2] {
        out.push((
            format!("container-truncate-{keep}"),
            corrupt_bytes(&packed, &ByteFault::Truncate { keep }),
        ));
    }
    out.push(("container-bad-magic".into(), corrupt_bytes(&packed, &ByteFault::BadMagic)));
    for round in 0..2u64 {
        let fault = ByteFault::BitFlips { seed: seed.wrapping_add(round), flips: 16 };
        out.push((format!("container-bit-flips-{round}"), corrupt_bytes(&packed, &fault)));
    }
    for (i, f) in img.files.iter().enumerate() {
        let Ok(bin) = Binary::from_bytes(&f.data) else { continue };
        for (name, mutant) in fbf_fault_corpus(&bin, seed) {
            let mut mutated = img.clone();
            mutated.files[i].data = mutant;
            out.push((format!("{}-{name}", f.path.replace('/', "_")), mutated.pack(false)));
        }
    }
    out
}

/// True when the section table still covers every symbol — a sanity
/// helper for tests that want to distinguish "parses but is damaged"
/// mutants from "must be rejected" mutants.
pub fn symbols_mapped(bin: &Binary) -> bool {
    bin.symbols.iter().all(|sym| {
        bin.sections
            .iter()
            .any(|s| s.contains(sym.addr) && sym.addr.saturating_add(sym.size) <= s.addr + s.size)
    })
}

/// Keeps `Section` importable for downstream corpus builders without a
/// direct `dtaint-fwbin` dependency.
pub type FbfSection = Section;

#[cfg(test)]
mod tests {
    use super::*;
    use dtaint_fwbin::Error;

    fn small_binary() -> Binary {
        let mut profile = crate::table2_profiles().remove(0);
        profile.total_functions = 30;
        let fw = crate::build_firmware(&profile);
        let bins = dtaint_fwimage::extract_binaries(&fw.image).unwrap();
        bins.into_iter().next().unwrap().1
    }

    #[test]
    fn rng_is_deterministic_and_nonzero_seeded() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut z = Rng64::new(0);
        assert_ne!(z.next_u64(), 0, "zero seed must be remapped");
    }

    #[test]
    fn byte_faults_are_deterministic() {
        let bin = small_binary();
        let bytes = bin.to_bytes();
        let f = ByteFault::BitFlips { seed: 7, flips: 32 };
        assert_eq!(corrupt_bytes(&bytes, &f), corrupt_bytes(&bytes, &f));
        assert_ne!(corrupt_bytes(&bytes, &f), bytes);
        assert_eq!(corrupt_bytes(&bytes, &ByteFault::Truncate { keep: 10 }).len(), 10);
    }

    #[test]
    fn flip_at_touches_exactly_one_bit() {
        let bytes = vec![0u8; 16];
        let flipped = corrupt_bytes(&bytes, &ByteFault::FlipAt { offset: 5, bit: 3 });
        assert_eq!(flipped[5], 1 << 3);
        let ones: u32 = flipped.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1);
        // Out-of-range offset is a no-op, not a panic.
        assert_eq!(corrupt_bytes(&bytes, &ByteFault::FlipAt { offset: 999, bit: 0 }), bytes);
    }

    #[test]
    fn store_fault_corpus_is_deterministic_and_covers_operators() {
        let artifact: Vec<u8> = (0..200u32).map(|i| (i % 251) as u8).collect();
        let a = store_fault_corpus(&artifact, 11);
        let b = store_fault_corpus(&artifact, 11);
        assert_eq!(a, b);
        assert!(a.iter().any(|(n, _)| n.starts_with("truncate-")));
        assert!(a.iter().any(|(n, _)| n == "bad-magic"));
        assert!(a.iter().any(|(n, _)| n.starts_with("bit-flips-")));
        assert!(a.iter().any(|(n, _)| n.starts_with("flip-at-")));
        assert!(a.len() >= 12, "sweep covers every operator: {}", a.len());
    }

    #[test]
    fn lying_section_and_wrapping_symbol_are_rejected_by_parser() {
        let bin = small_binary();
        let lying = corrupt_binary(&bin, &BinFault::LyingSectionSize { index: 0 });
        assert!(matches!(
            Binary::from_bytes(&lying.to_bytes()),
            Err(Error::SectionOutOfRange { .. })
        ));
        let wrapping = corrupt_binary(&bin, &BinFault::WrappingSymbol { index: 0 });
        assert!(matches!(Binary::from_bytes(&wrapping.to_bytes()), Err(Error::BadSymbol { .. })));
    }

    #[test]
    fn garbage_opcodes_keep_the_binary_parseable() {
        let bin = small_binary();
        let mutant = corrupt_binary(&bin, &BinFault::GarbageOpcodes { index: 0, seed: 9 });
        let reparsed = Binary::from_bytes(&mutant.to_bytes()).unwrap();
        assert_eq!(reparsed.functions().len(), bin.functions().len());
        assert_ne!(reparsed.section(SectionKind::Text), bin.section(SectionKind::Text));
    }

    #[test]
    fn dangling_symbol_is_unmapped() {
        let bin = small_binary();
        assert!(symbols_mapped(&bin));
        let mutant = corrupt_binary(&bin, &BinFault::DanglingSymbol);
        assert!(!symbols_mapped(&mutant));
    }

    #[test]
    fn corpora_are_nonempty_and_deterministic() {
        let bin = small_binary();
        let a = fbf_fault_corpus(&bin, 3);
        let b = fbf_fault_corpus(&bin, 3);
        assert_eq!(a, b);
        assert!(a.len() >= 10, "sweep covers every operator: {}", a.len());
        let mut profile = crate::table2_profiles().remove(0);
        profile.total_functions = 30;
        let fw = crate::build_firmware(&profile);
        let c = fwi_fault_corpus(&fw.image, 3);
        assert!(c.len() > a.len(), "image corpus embeds the binary corpus");
    }
}
