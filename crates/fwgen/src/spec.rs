//! The program DSL the firmware generator compiles to machine code.
//!
//! A [`ProgramSpec`] is a C-shaped mini-language: functions with
//! parameters, a stack frame of named buffers and word locals,
//! statements for memory access, arithmetic, calls (direct, imported,
//! and indirect through a function pointer in memory), conditionals and
//! copy loops. The two code generators in [`crate::codegen`] lower it to
//! `arm32e` or `mips32e`.

/// A word-sized local variable slot (index into the frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalId(pub u8);

/// A local buffer (index into the function's buffer list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufId(pub u8);

/// A value operand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Val {
    /// A 32-bit constant.
    Const(u32),
    /// The i-th parameter (0..=3).
    Param(u8),
    /// A word local.
    Local(LocalId),
    /// The address of a local buffer.
    BufAddr(BufId),
    /// The address of a string literal (label into `.rodata`).
    StrAddr(String),
    /// The address of a global object (label into `.data`/`.bss`).
    GlobalAddr(String),
    /// The address of a function (for installing handlers).
    FnAddr(String),
}

/// Comparison in conditionals and loop bounds (signed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `<=`
    Le,
    /// `>`
    Gt,
}

/// Arithmetic/bitwise operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arith {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Left shift.
    Shl,
    /// Logical right shift.
    Shr,
}

/// A call target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// An imported library function.
    Import(String),
    /// A function defined in the same program.
    Func(String),
}

/// One statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `local = src`.
    Set {
        /// Destination local.
        dst: LocalId,
        /// Source value.
        src: Val,
    },
    /// `dst = lhs <op> rhs`.
    Bin {
        /// Destination local.
        dst: LocalId,
        /// Operator.
        op: Arith,
        /// Left operand.
        lhs: Val,
        /// Right operand.
        rhs: Val,
    },
    /// `*(base + off) = src` (32-bit).
    Store {
        /// Base address value.
        base: Val,
        /// Constant byte offset.
        off: i16,
        /// Stored value.
        src: Val,
    },
    /// `dst = *(base + off)` (32-bit).
    Load {
        /// Destination local.
        dst: LocalId,
        /// Base address value.
        base: Val,
        /// Constant byte offset.
        off: i16,
    },
    /// `*(u8*)(base + off) = src`.
    StoreByte {
        /// Base address value.
        base: Val,
        /// Constant byte offset.
        off: i16,
        /// Stored value (low byte).
        src: Val,
    },
    /// `dst = *(u8*)(base + off)` (zero-extended).
    LoadByte {
        /// Destination local.
        dst: LocalId,
        /// Base address value.
        base: Val,
        /// Constant byte offset.
        off: i16,
    },
    /// `*(u16*)(base + off) = src`.
    StoreHalf {
        /// Base address value.
        base: Val,
        /// Constant byte offset.
        off: i16,
        /// Stored value (low halfword).
        src: Val,
    },
    /// `dst = *(u16*)(base + off)` (zero-extended).
    LoadHalf {
        /// Destination local.
        dst: LocalId,
        /// Base address value.
        base: Val,
        /// Constant byte offset.
        off: i16,
    },
    /// `[ret =] callee(args…)`; up to 4 register + 6 stack arguments.
    Call {
        /// The target.
        callee: Callee,
        /// Argument values.
        args: Vec<Val>,
        /// Local receiving the return value.
        ret: Option<LocalId>,
    },
    /// `[ret =] (*(fn_base + off))(args…)` — indirect call through a
    /// function pointer stored in memory.
    CallIndirect {
        /// Base address of the structure holding the pointer.
        fn_base: Val,
        /// Field offset of the pointer.
        off: i16,
        /// Argument values.
        args: Vec<Val>,
        /// Local receiving the return value.
        ret: Option<LocalId>,
    },
    /// `if (lhs <op> rhs) { then } else { els }`.
    If {
        /// Left comparison operand.
        lhs: Val,
        /// Comparison operator.
        op: Cmp,
        /// Right comparison operand.
        rhs: Val,
        /// True branch.
        then: Vec<Stmt>,
        /// False branch.
        els: Vec<Stmt>,
    },
    /// A byte-copy loop `do { *dst++ = *src++ } while …`:
    /// with `bound: None` it stops on a NUL byte (strcpy-shaped,
    /// unbounded); with `bound: Some(n)` it copies exactly `n` bytes
    /// (counted, bounded).
    CopyLoop {
        /// Destination buffer address.
        dst: Val,
        /// Source buffer address.
        src: Val,
        /// Byte count, or `None` for copy-until-NUL.
        bound: Option<Val>,
    },
    /// Return, optionally with a value.
    Return(Option<Val>),
}

/// One function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSpec {
    /// Symbol name.
    pub name: String,
    /// Number of parameters (0..=4).
    pub n_params: u8,
    /// Sizes of the local buffers, in bytes.
    pub bufs: Vec<u32>,
    /// Number of word locals.
    pub n_locals: u8,
    /// Body statements.
    pub body: Vec<Stmt>,
}

impl FnSpec {
    /// Creates an empty function spec.
    pub fn new(name: &str, n_params: u8) -> FnSpec {
        FnSpec { name: name.to_owned(), n_params, bufs: Vec::new(), n_locals: 0, body: Vec::new() }
    }

    /// Declares a buffer of `size` bytes, returning its id.
    pub fn buf(&mut self, size: u32) -> BufId {
        self.bufs.push(size);
        BufId((self.bufs.len() - 1) as u8)
    }

    /// Declares a word local, returning its id.
    pub fn local(&mut self) -> LocalId {
        self.n_locals += 1;
        LocalId(self.n_locals - 1)
    }

    /// Appends a statement.
    pub fn push(&mut self, s: Stmt) -> &mut Self {
        self.body.push(s);
        self
    }
}

/// A whole program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProgramSpec {
    /// Binary name (e.g. `cgibin`).
    pub name: String,
    /// Functions, in layout order (the first is the entry).
    pub functions: Vec<FnSpec>,
    /// String literals: `(label, contents)`.
    pub strings: Vec<(String, String)>,
    /// Zero-initialised globals: `(label, size)`.
    pub globals: Vec<(String, u32)>,
}

impl ProgramSpec {
    /// Creates an empty program.
    pub fn new(name: &str) -> ProgramSpec {
        ProgramSpec { name: name.to_owned(), ..Default::default() }
    }

    /// Adds a string literal, returning its label.
    pub fn string(&mut self, label: &str, value: &str) -> String {
        self.strings.push((label.to_owned(), value.to_owned()));
        label.to_owned()
    }

    /// Adds a zero-initialised global of `size` bytes.
    pub fn global(&mut self, label: &str, size: u32) -> String {
        self.globals.push((label.to_owned(), size));
        label.to_owned()
    }

    /// Adds a function.
    pub fn func(&mut self, f: FnSpec) -> &mut Self {
        self.functions.push(f);
        self
    }

    /// Total statement count (a rough program-size metric).
    pub fn stmt_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::If { then, els, .. } => 1 + count(then) + count(els),
                    _ => 1,
                })
                .sum()
        }
        self.functions.iter().map(|f| count(&f.body)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut f = FnSpec::new("f", 2);
        let b0 = f.buf(64);
        let b1 = f.buf(128);
        let l0 = f.local();
        let l1 = f.local();
        assert_eq!((b0, b1), (BufId(0), BufId(1)));
        assert_eq!((l0, l1), (LocalId(0), LocalId(1)));
        assert_eq!(f.bufs, vec![64, 128]);
        assert_eq!(f.n_locals, 2);
    }

    #[test]
    fn stmt_count_recurses_into_ifs() {
        let mut p = ProgramSpec::new("t");
        let mut f = FnSpec::new("f", 0);
        f.push(Stmt::If {
            lhs: Val::Const(1),
            op: Cmp::Eq,
            rhs: Val::Const(1),
            then: vec![Stmt::Return(None)],
            els: vec![Stmt::Return(None), Stmt::Return(None)],
        });
        p.func(f);
        assert_eq!(p.stmt_count(), 4);
    }
}
