//! Lifting guest code to IR blocks.

use crate::expr::IrExpr;
use crate::stmt::{IrBlock, IrStmt, JumpKind};
use crate::{lift_arm, lift_mips};
use dtaint_fwbin::{Arch, Binary, Error, Result, INS_SIZE};

/// Upper bound on the bytes lifted into a single block, as a safety net
/// against lifting through data.
pub const MAX_BLOCK_BYTES: u32 = 16 * 1024;

/// How one lifted instruction affects control flow.
#[derive(Debug)]
pub(crate) enum Terminator {
    /// Unconditional transfer to an address expression.
    Jump(IrExpr),
    /// A conditional branch: an [`IrStmt::Exit`] has been emitted and the
    /// block falls through to the next instruction.
    CondBranch,
    /// A (direct or indirect) call.
    Call {
        /// Callee address expression.
        next: IrExpr,
        /// Address execution resumes at after the callee returns.
        return_to: u32,
    },
    /// A function return.
    Ret(IrExpr),
}

/// The lifting of a single guest instruction.
#[derive(Debug)]
pub(crate) struct Lifted {
    /// Statements the instruction contributes (excluding its `Imark`).
    pub stmts: Vec<IrStmt>,
    /// Set when the instruction ends the basic block.
    pub terminator: Option<Terminator>,
}

impl Lifted {
    pub(crate) fn flow(stmts: Vec<IrStmt>) -> Lifted {
        Lifted { stmts, terminator: None }
    }

    pub(crate) fn end(stmts: Vec<IrStmt>, terminator: Terminator) -> Lifted {
        Lifted { stmts, terminator: Some(terminator) }
    }
}

/// Lifts one basic block starting at `addr`.
///
/// Lifting stops at the first control-flow instruction, at `limit`
/// (typically the end of the enclosing function), or after
/// [`MAX_BLOCK_BYTES`]. When the block ends without a control-flow
/// instruction it falls through (`JumpKind::Boring` to the next address).
///
/// Note that a block ended by a *conditional* branch has the branch
/// recorded as an [`IrStmt::Exit`] side exit and falls through, exactly
/// like VEX superblocks.
///
/// # Errors
///
/// Returns [`Error::BadInstruction`] when a word fails to decode and
/// [`Error::Truncated`] when `addr` is outside the mapped text.
pub fn lift_block(bin: &Binary, addr: u32, limit: u32) -> Result<IrBlock> {
    let mut stmts = Vec::new();
    let mut pc = addr;
    let mut next = None;
    let mut jumpkind = JumpKind::Boring;
    while pc < limit && pc - addr < MAX_BLOCK_BYTES {
        let word = bin.read_u32(pc).ok_or(Error::Truncated)?;
        let lifted = match bin.arch {
            Arch::Arm32e => lift_arm::lift_ins(word, pc)?,
            Arch::Mips32e => lift_mips::lift_ins(word, pc)?,
        };
        stmts.push(IrStmt::Imark { addr: pc, len: INS_SIZE });
        stmts.extend(lifted.stmts);
        pc += INS_SIZE;
        if let Some(term) = lifted.terminator {
            match term {
                Terminator::Jump(e) => next = Some((e, JumpKind::Boring)),
                Terminator::CondBranch => {
                    next = Some((IrExpr::Const(pc), JumpKind::Boring));
                }
                Terminator::Call { next: e, return_to } => {
                    next = Some((e, JumpKind::Call { return_to }));
                }
                Terminator::Ret(e) => next = Some((e, JumpKind::Ret)),
            }
            break;
        }
    }
    if let Some((n, k)) = next {
        jumpkind = k;
        return Ok(IrBlock { addr, size: pc - addr, stmts, next: n, jumpkind });
    }
    // Fell off the end (or hit the limit): plain fall-through.
    Ok(IrBlock { addr, size: pc - addr, stmts, next: IrExpr::Const(pc), jumpkind })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Width};
    use crate::{CMP_L, CMP_R};
    use dtaint_fwbin::arm::{ArmIns, Cond};
    use dtaint_fwbin::asm::Assembler;
    use dtaint_fwbin::link::BinaryBuilder;
    use dtaint_fwbin::mips::MipsIns;
    use dtaint_fwbin::Reg;

    fn arm_bin(build: impl FnOnce(&mut Assembler)) -> Binary {
        let mut a = Assembler::new(Arch::Arm32e);
        build(&mut a);
        let mut b = BinaryBuilder::new(Arch::Arm32e);
        b.add_function("f", a);
        b.add_import("memcpy");
        b.link().unwrap()
    }

    fn mips_bin(build: impl FnOnce(&mut Assembler)) -> Binary {
        let mut a = Assembler::new(Arch::Mips32e);
        build(&mut a);
        let mut b = BinaryBuilder::new(Arch::Mips32e);
        b.add_function("f", a);
        b.add_import("memcpy");
        b.link().unwrap()
    }

    fn lift_fn(bin: &Binary) -> IrBlock {
        let f = bin.function("f").unwrap();
        lift_block(bin, f.addr, f.addr + f.size).unwrap()
    }

    #[test]
    fn arm_load_lifts_to_base_plus_offset() {
        // The paper's running example: LDR R1, [R5, 0x4C].
        let bin = arm_bin(|a| {
            a.arm(ArmIns::Ldr { rt: Reg(1), rn: Reg(5), off: 0x4c });
            a.ret();
        });
        let b = lift_fn(&bin);
        assert_eq!(
            b.stmts[1],
            IrStmt::Put {
                reg: Reg(1),
                value: IrExpr::load(
                    IrExpr::binop(BinOp::Add, IrExpr::Get(Reg(5)), IrExpr::Const(0x4c)),
                    Width::W32
                ),
            }
        );
        assert_eq!(b.jumpkind, JumpKind::Ret);
    }

    #[test]
    fn arm_cmp_and_branch_produce_exit() {
        let bin = arm_bin(|a| {
            a.arm(ArmIns::CmpI { rn: Reg(0), imm: 64 });
            a.arm_b(Cond::Lt, "ok");
            a.label("ok");
            a.ret();
        });
        let b = lift_fn(&bin);
        // CMP writes both pseudo-registers.
        assert!(b.stmts.iter().any(|s| matches!(s, IrStmt::Put { reg, .. } if *reg == CMP_L)));
        assert!(b.stmts.iter().any(|s| matches!(s, IrStmt::Put { reg, .. } if *reg == CMP_R)));
        // The branch becomes a side exit with a CmpLt condition.
        let exit = b
            .stmts
            .iter()
            .find_map(|s| match s {
                IrStmt::Exit { cond, target } => Some((cond.clone(), *target)),
                _ => None,
            })
            .expect("exit statement");
        assert_eq!(exit.0, IrExpr::binop(BinOp::CmpLt, IrExpr::Get(CMP_L), IrExpr::Get(CMP_R)));
        assert_eq!(exit.1, bin.function("f").unwrap().addr + 8);
        // Fallthrough next.
        assert_eq!(b.next_const(), Some(bin.function("f").unwrap().addr + 8));
    }

    #[test]
    fn arm_call_sets_link_register_and_jumpkind() {
        let bin = arm_bin(|a| {
            a.call("memcpy");
            a.ret();
        });
        let f = bin.function("f").unwrap();
        let b = lift_block(&bin, f.addr, f.addr + f.size).unwrap();
        assert_eq!(b.jumpkind, JumpKind::Call { return_to: f.addr + 4 });
        let stub = bin.imports[0].stub_addr;
        assert_eq!(b.next_const(), Some(stub));
        assert!(b.stmts.iter().any(|s| matches!(
            s,
            IrStmt::Put { reg: Reg(14), value } if *value == IrExpr::Const(f.addr + 4)
        )));
    }

    #[test]
    fn arm_indirect_call_has_register_next() {
        let bin = arm_bin(|a| {
            a.arm(ArmIns::Blx { rm: Reg(3) });
            a.ret();
        });
        let b = lift_fn(&bin);
        assert_eq!(b.next, IrExpr::Get(Reg(3)));
        assert!(matches!(b.jumpkind, JumpKind::Call { .. }));
    }

    #[test]
    fn arm_push_pop_expand_to_memory_ops() {
        let bin = arm_bin(|a| {
            a.arm(ArmIns::Push { mask: 0b1_0011 }); // r0, r1, r4
            a.arm(ArmIns::Pop { mask: 0b1_0011 });
            a.ret();
        });
        let b = lift_fn(&bin);
        let stores = b.stmts.iter().filter(|s| matches!(s, IrStmt::Store { .. })).count();
        assert_eq!(stores, 3);
        let sp_writes = b
            .stmts
            .iter()
            .filter(|s| matches!(s, IrStmt::Put { reg, .. } if *reg == Reg::SP))
            .count();
        assert_eq!(sp_writes, 2, "one SP update per push/pop");
        // r0 is pushed at the lowest address: sp - 12.
        assert!(b.stmts.iter().any(|s| matches!(
            s,
            IrStmt::Store { addr: IrExpr::Binop { op: BinOp::Add, rhs, .. }, value, .. }
                if **rhs == IrExpr::Const((-12i32) as u32) && *value == IrExpr::Get(Reg(0))
        )));
    }

    #[test]
    fn mips_zero_register_folds_to_constant() {
        let bin = mips_bin(|a| {
            a.mips(MipsIns::Addu { rd: Reg(2), rs: Reg(0), rt: Reg(4) });
            a.ret();
        });
        let b = lift_fn(&bin);
        assert_eq!(
            b.stmts[1],
            IrStmt::Put {
                reg: Reg(2),
                value: IrExpr::binop(BinOp::Add, IrExpr::Const(0), IrExpr::Get(Reg(4))),
            }
        );
    }

    #[test]
    fn mips_write_to_zero_register_is_dropped() {
        let bin = mips_bin(|a| {
            a.mips(MipsIns::Addiu { rt: Reg(0), rs: Reg(4), imm: 1 });
            a.ret();
        });
        let b = lift_fn(&bin);
        assert!(
            !b.stmts.iter().any(|s| matches!(s, IrStmt::Put { .. })),
            "writes to $zero must vanish"
        );
    }

    #[test]
    fn mips_compare_and_branch_is_single_exit() {
        let bin = mips_bin(|a| {
            a.mips_bne(Reg(4), Reg(5), "out");
            a.label("out");
            a.ret();
        });
        let b = lift_fn(&bin);
        let exits = b.exit_targets();
        assert_eq!(exits.len(), 1);
        assert!(b.stmts.iter().any(|s| matches!(
            s,
            IrStmt::Exit { cond: IrExpr::Binop { op: BinOp::CmpNe, .. }, .. }
        )));
    }

    #[test]
    fn mips_beq_zero_zero_is_unconditional() {
        // The assembler's `jump` idiom.
        let bin = mips_bin(|a| {
            a.jump("out");
            a.mips(MipsIns::Nop);
            a.label("out");
            a.ret();
        });
        let f = bin.function("f").unwrap();
        let b = lift_block(&bin, f.addr, f.addr + f.size).unwrap();
        assert_eq!(b.jumpkind, JumpKind::Boring);
        assert_eq!(b.next_const(), Some(f.addr + 8));
        assert!(b.exit_targets().is_empty());
        assert_eq!(b.size, 4);
    }

    #[test]
    fn mips_call_and_ret() {
        let bin = mips_bin(|a| {
            a.call("memcpy");
            a.ret();
        });
        let f = bin.function("f").unwrap();
        let b = lift_block(&bin, f.addr, f.addr + f.size).unwrap();
        assert!(matches!(b.jumpkind, JumpKind::Call { .. }));
        let b2 = lift_block(&bin, f.addr + 4, f.addr + f.size).unwrap();
        assert_eq!(b2.jumpkind, JumpKind::Ret);
        assert_eq!(b2.next, IrExpr::Get(Reg::RA));
    }

    #[test]
    fn lift_stops_at_limit() {
        let bin = arm_bin(|a| {
            a.arm(ArmIns::Nop);
            a.arm(ArmIns::Nop);
            a.ret();
        });
        let f = bin.function("f").unwrap();
        let b = lift_block(&bin, f.addr, f.addr + 4).unwrap();
        assert_eq!(b.size, 4);
        assert_eq!(b.jumpkind, JumpKind::Boring);
        assert_eq!(b.next_const(), Some(f.addr + 4));
    }

    #[test]
    fn lift_unmapped_address_errors() {
        let bin = arm_bin(|a| a.ret());
        assert_eq!(lift_block(&bin, 0xdead_0000, 0xdead_0010).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn movt_preserves_low_half() {
        let bin = arm_bin(|a| {
            a.arm(ArmIns::MovT { rd: Reg(2), imm: 0x1234 });
            a.ret();
        });
        let b = lift_fn(&bin);
        let IrStmt::Put { value, .. } = &b.stmts[1] else { panic!() };
        let s = value.to_string();
        assert!(s.contains("0xffff"), "movt keeps low bits: {s}");
        assert!(s.contains("0x12340000"), "movt installs high bits: {s}");
    }
}
