use crate::expr::{IrExpr, Width};
use dtaint_fwbin::Reg;
use std::fmt;

/// One IR statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrStmt {
    /// Marks the start of a lifted guest instruction (VEX's `IMark`).
    Imark {
        /// Guest address of the instruction.
        addr: u32,
        /// Instruction length in bytes.
        len: u32,
    },
    /// Writes a guest register: `reg = value`.
    Put {
        /// Destination register.
        reg: Reg,
        /// Value expression.
        value: IrExpr,
    },
    /// Writes memory: `mem[addr] = value`.
    Store {
        /// Address expression.
        addr: IrExpr,
        /// Value expression.
        value: IrExpr,
        /// Access width.
        width: Width,
    },
    /// Conditional side exit: when `cond` is true, control transfers to
    /// `target`; otherwise execution continues with the next statement.
    Exit {
        /// Boolean condition (a `Cmp*` binop).
        cond: IrExpr,
        /// Guest target address.
        target: u32,
    },
}

impl fmt::Display for IrStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrStmt::Imark { addr, len } => write!(f, "-- imark {addr:#x} len={len}"),
            IrStmt::Put { reg, value } => write!(f, "{reg} = {value}"),
            IrStmt::Store { addr, value, width } => {
                let w = match width {
                    Width::W8 => "8",
                    Width::W16 => "16",
                    Width::W32 => "32",
                };
                write!(f, "mem{w}[{addr}] = {value}")
            }
            IrStmt::Exit { cond, target } => write!(f, "if {cond} goto {target:#x}"),
        }
    }
}

/// How control leaves a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JumpKind {
    /// Ordinary jump or fall-through.
    Boring,
    /// A call; after the callee returns execution resumes at `return_to`.
    Call {
        /// Address the callee returns to.
        return_to: u32,
    },
    /// A function return.
    Ret,
}

/// One lifted basic block.
///
/// The block covers guest bytes `[addr, addr + size)`. Control continues
/// at the address `next` evaluates to (a [`IrExpr::Const`] for direct
/// flow, a register read for indirect flow), with semantics given by
/// `jumpkind`. Conditional branches appear as [`IrStmt::Exit`] side exits
/// before the block end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrBlock {
    /// Guest address of the first instruction.
    pub addr: u32,
    /// Size of the covered guest bytes.
    pub size: u32,
    /// Lifted statements in execution order.
    pub stmts: Vec<IrStmt>,
    /// Where control flows after the block.
    pub next: IrExpr,
    /// How control flows after the block.
    pub jumpkind: JumpKind,
}

impl IrBlock {
    /// Address of the first byte after the block.
    pub fn end(&self) -> u32 {
        self.addr + self.size
    }

    /// Guest addresses of the lifted instructions, from the `Imark`s.
    pub fn instruction_addrs(&self) -> Vec<u32> {
        self.stmts
            .iter()
            .filter_map(|s| match s {
                IrStmt::Imark { addr, .. } => Some(*addr),
                _ => None,
            })
            .collect()
    }

    /// Targets of the conditional side exits in the block.
    pub fn exit_targets(&self) -> Vec<u32> {
        self.stmts
            .iter()
            .filter_map(|s| match s {
                IrStmt::Exit { target, .. } => Some(*target),
                _ => None,
            })
            .collect()
    }

    /// The constant fall-through / jump target, when direct.
    pub fn next_const(&self) -> Option<u32> {
        self.next.as_const()
    }
}

impl fmt::Display for IrBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "block {:#x}..{:#x}:", self.addr, self.end())?;
        for s in &self.stmts {
            writeln!(f, "  {s}")?;
        }
        write!(f, "  next {} ({:?})", self.next, self.jumpkind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    fn sample_block() -> IrBlock {
        IrBlock {
            addr: 0x1000,
            size: 12,
            stmts: vec![
                IrStmt::Imark { addr: 0x1000, len: 4 },
                IrStmt::Put { reg: Reg(0), value: IrExpr::Const(7) },
                IrStmt::Imark { addr: 0x1004, len: 4 },
                IrStmt::Exit {
                    cond: IrExpr::binop(BinOp::CmpEq, IrExpr::Get(Reg(0)), IrExpr::Const(0)),
                    target: 0x2000,
                },
                IrStmt::Imark { addr: 0x1008, len: 4 },
                IrStmt::Store {
                    addr: IrExpr::Get(Reg(13)),
                    value: IrExpr::Get(Reg(0)),
                    width: Width::W32,
                },
            ],
            next: IrExpr::Const(0x100c),
            jumpkind: JumpKind::Boring,
        }
    }

    #[test]
    fn accessors() {
        let b = sample_block();
        assert_eq!(b.end(), 0x100c);
        assert_eq!(b.instruction_addrs(), vec![0x1000, 0x1004, 0x1008]);
        assert_eq!(b.exit_targets(), vec![0x2000]);
        assert_eq!(b.next_const(), Some(0x100c));
    }

    #[test]
    fn indirect_next_has_no_const() {
        let mut b = sample_block();
        b.next = IrExpr::Get(Reg(14));
        assert_eq!(b.next_const(), None);
    }

    #[test]
    fn display_contains_all_statements() {
        let s = sample_block().to_string();
        assert!(s.contains("imark 0x1000"));
        assert!(s.contains("x0 = 0x7"));
        assert!(s.contains("if (x0 == 0x0) goto 0x2000"));
        assert!(s.contains("mem32[x13] = x0"));
    }
}
