//! Lifting `arm32e` instructions to IR.

use crate::expr::{BinOp, IrExpr, Width};
use crate::lift::{Lifted, Terminator};
use crate::stmt::IrStmt;
use crate::{CMP_L, CMP_R};
use dtaint_fwbin::arm::{ArmIns, Cond};
use dtaint_fwbin::{Reg, Result, INS_SIZE};

fn get(r: Reg) -> IrExpr {
    IrExpr::Get(r)
}

fn put(reg: Reg, value: IrExpr) -> IrStmt {
    IrStmt::Put { reg, value }
}

fn binop3(op: BinOp, rd: Reg, rn: Reg, rm: Reg) -> Lifted {
    Lifted::flow(vec![put(rd, IrExpr::binop(op, get(rn), get(rm)))])
}

fn cond_to_op(c: Cond) -> BinOp {
    match c {
        Cond::Eq => BinOp::CmpEq,
        Cond::Ne => BinOp::CmpNe,
        Cond::Lt => BinOp::CmpLt,
        Cond::Ge => BinOp::CmpGe,
        Cond::Le => BinOp::CmpLe,
        Cond::Gt => BinOp::CmpGt,
        Cond::Al => unreachable!("AL handled as an unconditional jump"),
    }
}

/// Lifts one decoded `arm32e` instruction at `pc`.
///
/// # Errors
///
/// Returns the decode error for an invalid instruction word.
pub(crate) fn lift_ins(word: u32, pc: u32) -> Result<Lifted> {
    use ArmIns::*;
    let ins = ArmIns::decode(word, pc)?;
    Ok(match ins {
        Nop => Lifted::flow(vec![]),
        MovR { rd, rm } => Lifted::flow(vec![put(rd, get(rm))]),
        MovI { rd, imm } => Lifted::flow(vec![put(rd, IrExpr::Const(imm as u32))]),
        MovT { rd, imm } => Lifted::flow(vec![put(
            rd,
            IrExpr::binop(
                BinOp::Or,
                IrExpr::binop(BinOp::And, get(rd), IrExpr::Const(0xffff)),
                IrExpr::Const((imm as u32) << 16),
            ),
        )]),
        AddR { rd, rn, rm } => binop3(BinOp::Add, rd, rn, rm),
        AddI { rd, rn, imm } => Lifted::flow(vec![put(rd, IrExpr::add_const(get(rn), imm as i32))]),
        SubR { rd, rn, rm } => binop3(BinOp::Sub, rd, rn, rm),
        SubI { rd, rn, imm } => Lifted::flow(vec![put(
            rd,
            IrExpr::binop(BinOp::Sub, get(rn), IrExpr::Const(imm as i32 as u32)),
        )]),
        Mul { rd, rn, rm } => binop3(BinOp::Mul, rd, rn, rm),
        AndR { rd, rn, rm } => binop3(BinOp::And, rd, rn, rm),
        OrrR { rd, rn, rm } => binop3(BinOp::Or, rd, rn, rm),
        EorR { rd, rn, rm } => binop3(BinOp::Xor, rd, rn, rm),
        LslI { rd, rn, sh } => Lifted::flow(vec![put(
            rd,
            IrExpr::binop(BinOp::Shl, get(rn), IrExpr::Const(sh as u32)),
        )]),
        LsrI { rd, rn, sh } => Lifted::flow(vec![put(
            rd,
            IrExpr::binop(BinOp::Shr, get(rn), IrExpr::Const(sh as u32)),
        )]),
        LslR { rd, rn, rm } => binop3(BinOp::Shl, rd, rn, rm),
        LsrR { rd, rn, rm } => binop3(BinOp::Shr, rd, rn, rm),
        CmpR { rn, rm } => Lifted::flow(vec![put(CMP_L, get(rn)), put(CMP_R, get(rm))]),
        CmpI { rn, imm } => {
            Lifted::flow(vec![put(CMP_L, get(rn)), put(CMP_R, IrExpr::Const(imm as i32 as u32))])
        }
        Ldr { rt, rn, off } => Lifted::flow(vec![put(
            rt,
            IrExpr::load(IrExpr::add_const(get(rn), off as i32), Width::W32),
        )]),
        Str { rt, rn, off } => Lifted::flow(vec![IrStmt::Store {
            addr: IrExpr::add_const(get(rn), off as i32),
            value: get(rt),
            width: Width::W32,
        }]),
        Ldrb { rt, rn, off } => Lifted::flow(vec![put(
            rt,
            IrExpr::load(IrExpr::add_const(get(rn), off as i32), Width::W8),
        )]),
        Strb { rt, rn, off } => Lifted::flow(vec![IrStmt::Store {
            addr: IrExpr::add_const(get(rn), off as i32),
            value: get(rt),
            width: Width::W8,
        }]),
        Ldrh { rt, rn, off } => Lifted::flow(vec![put(
            rt,
            IrExpr::load(IrExpr::add_const(get(rn), off as i32), Width::W16),
        )]),
        Strh { rt, rn, off } => Lifted::flow(vec![IrStmt::Store {
            addr: IrExpr::add_const(get(rn), off as i32),
            value: get(rt),
            width: Width::W16,
        }]),
        Push { mask } => {
            let regs: Vec<Reg> = (0..16).filter(|i| mask & (1 << i) != 0).map(Reg).collect();
            let n = regs.len() as i32;
            let mut stmts = Vec::with_capacity(regs.len() + 1);
            // Lowest-numbered register lands at the lowest address.
            for (rank, r) in regs.iter().enumerate() {
                let off = -(4 * (n - rank as i32));
                stmts.push(IrStmt::Store {
                    addr: IrExpr::add_const(get(Reg::SP), off),
                    value: get(*r),
                    width: Width::W32,
                });
            }
            stmts.push(put(
                Reg::SP,
                IrExpr::binop(BinOp::Sub, get(Reg::SP), IrExpr::Const(4 * n as u32)),
            ));
            Lifted::flow(stmts)
        }
        Pop { mask } => {
            let regs: Vec<Reg> = (0..16).filter(|i| mask & (1 << i) != 0).map(Reg).collect();
            let n = regs.len() as u32;
            let mut stmts = Vec::with_capacity(regs.len() + 1);
            for (rank, r) in regs.iter().enumerate() {
                stmts.push(put(
                    *r,
                    IrExpr::load(IrExpr::add_const(get(Reg::SP), 4 * rank as i32), Width::W32),
                ));
            }
            stmts.push(put(Reg::SP, IrExpr::binop(BinOp::Add, get(Reg::SP), IrExpr::Const(4 * n))));
            Lifted::flow(stmts)
        }
        B { cond, off } => {
            let target = (pc as i64 + INS_SIZE as i64 + off as i64 * INS_SIZE as i64) as u32;
            if cond == Cond::Al {
                Lifted::end(vec![], Terminator::Jump(IrExpr::Const(target)))
            } else {
                let cond_expr = IrExpr::binop(cond_to_op(cond), get(CMP_L), get(CMP_R));
                Lifted::end(vec![IrStmt::Exit { cond: cond_expr, target }], Terminator::CondBranch)
            }
        }
        Bl { off } => {
            let target = (pc as i64 + INS_SIZE as i64 + off as i64 * INS_SIZE as i64) as u32;
            let return_to = pc + INS_SIZE;
            Lifted::end(
                vec![put(Reg::LR, IrExpr::Const(return_to))],
                Terminator::Call { next: IrExpr::Const(target), return_to },
            )
        }
        Blx { rm } => {
            let return_to = pc + INS_SIZE;
            Lifted::end(
                vec![put(Reg::LR, IrExpr::Const(return_to))],
                Terminator::Call { next: get(rm), return_to },
            )
        }
        Bx { rm } => {
            if rm == Reg::LR {
                Lifted::end(vec![], Terminator::Ret(get(Reg::LR)))
            } else {
                Lifted::end(vec![], Terminator::Jump(get(rm)))
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lift(ins: ArmIns, pc: u32) -> Lifted {
        lift_ins(ins.encode().unwrap(), pc).unwrap()
    }

    #[test]
    fn branch_target_arithmetic() {
        // B with offset -2 at pc=0x100: target = 0x100 + 4 - 8 = 0xfc.
        let l = lift(ArmIns::B { cond: Cond::Al, off: -2 }, 0x100);
        match l.terminator {
            Some(Terminator::Jump(IrExpr::Const(t))) => assert_eq!(t, 0xfc),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn conditional_branch_keeps_fallthrough() {
        let l = lift(ArmIns::B { cond: Cond::Ne, off: 4 }, 0x200);
        assert!(matches!(l.terminator, Some(Terminator::CondBranch)));
        assert_eq!(
            l.stmts,
            vec![IrStmt::Exit {
                cond: IrExpr::binop(BinOp::CmpNe, IrExpr::Get(CMP_L), IrExpr::Get(CMP_R)),
                target: 0x200 + 4 + 16,
            }]
        );
    }

    #[test]
    fn bl_records_return_address() {
        let l = lift(ArmIns::Bl { off: 10 }, 0x400);
        assert_eq!(l.stmts, vec![put(Reg::LR, IrExpr::Const(0x404))]);
        match l.terminator {
            Some(Terminator::Call { next: IrExpr::Const(t), return_to }) => {
                assert_eq!(t, 0x400 + 4 + 40);
                assert_eq!(return_to, 0x404);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bx_non_lr_is_plain_indirect_jump() {
        let l = lift(ArmIns::Bx { rm: Reg(3) }, 0);
        assert!(matches!(l.terminator, Some(Terminator::Jump(IrExpr::Get(Reg(3))))));
    }

    #[test]
    fn push_order_matches_arm_convention() {
        // push {r0, r4}: r0 at sp-8, r4 at sp-4, sp -= 8.
        let l = lift(ArmIns::Push { mask: 0b1_0001 }, 0);
        assert_eq!(l.stmts.len(), 3);
        let IrStmt::Store { addr, value, .. } = &l.stmts[0] else { panic!() };
        assert_eq!(value, &IrExpr::Get(Reg(0)));
        assert_eq!(addr.to_string(), "(x13 + 0xfffffff8)");
        let IrStmt::Store { value, .. } = &l.stmts[1] else { panic!() };
        assert_eq!(value, &IrExpr::Get(Reg(4)));
    }

    #[test]
    fn halfword_ops_lift_with_w16() {
        let l = lift(ArmIns::Ldrh { rt: Reg(1), rn: Reg(2), off: 6 }, 0);
        assert!(matches!(
            &l.stmts[0],
            IrStmt::Put { value: IrExpr::Load { width: crate::Width::W16, .. }, .. }
        ));
        let l = lift(ArmIns::Strh { rt: Reg(1), rn: Reg(2), off: -2 }, 0);
        assert!(matches!(&l.stmts[0], IrStmt::Store { width: crate::Width::W16, .. }));
    }

    #[test]
    fn pop_then_sp_restore() {
        let l = lift(ArmIns::Pop { mask: 0b11 }, 0);
        let IrStmt::Put { reg, .. } = &l.stmts[2] else { panic!() };
        assert_eq!(*reg, Reg::SP);
    }
}
