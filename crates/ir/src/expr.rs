use dtaint_fwbin::Reg;
use std::fmt;

/// Access width of a memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// One byte, zero-extended on load.
    W8,
    /// One halfword (16 bits), zero-extended on load.
    W16,
    /// One 32-bit word.
    W32,
}

impl Width {
    /// Size of the access in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            Width::W8 => 1,
            Width::W16 => 2,
            Width::W32 => 4,
        }
    }
}

/// A binary operator in the IR.
///
/// The `Cmp*` family yields a boolean (0/1) and appears only in
/// [`IrStmt::Exit`](crate::IrStmt::Exit) conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping 32-bit addition.
    Add,
    /// Wrapping 32-bit subtraction.
    Sub,
    /// Wrapping 32-bit multiplication.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Logical left shift.
    Shl,
    /// Logical right shift.
    Shr,
    /// Equality test.
    CmpEq,
    /// Inequality test.
    CmpNe,
    /// Signed less-than.
    CmpLt,
    /// Signed greater-or-equal.
    CmpGe,
    /// Signed less-or-equal.
    CmpLe,
    /// Signed greater-than.
    CmpGt,
}

impl BinOp {
    /// True for the comparison operators.
    pub fn is_cmp(self) -> bool {
        matches!(
            self,
            BinOp::CmpEq | BinOp::CmpNe | BinOp::CmpLt | BinOp::CmpGe | BinOp::CmpLe | BinOp::CmpGt
        )
    }

    /// The comparison testing the opposite outcome.
    ///
    /// # Panics
    ///
    /// Panics when called on a non-comparison operator.
    pub fn negate_cmp(self) -> BinOp {
        match self {
            BinOp::CmpEq => BinOp::CmpNe,
            BinOp::CmpNe => BinOp::CmpEq,
            BinOp::CmpLt => BinOp::CmpGe,
            BinOp::CmpGe => BinOp::CmpLt,
            BinOp::CmpLe => BinOp::CmpGt,
            BinOp::CmpGt => BinOp::CmpLe,
            other => panic!("negate_cmp on non-comparison operator {other:?}"),
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::CmpEq => "==",
            BinOp::CmpNe => "!=",
            BinOp::CmpLt => "<",
            BinOp::CmpGe => ">=",
            BinOp::CmpLe => "<=",
            BinOp::CmpGt => ">",
        };
        f.write_str(s)
    }
}

/// A side-effect-free IR expression tree.
///
/// Like VEX's `IRExpr`, but tree-structured rather than flattened through
/// temporaries: the lifters emit nested expressions directly, which keeps
/// the symbolic evaluator a single recursive walk.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IrExpr {
    /// A 32-bit constant.
    Const(u32),
    /// The current value of a guest register (or pseudo-register).
    Get(Reg),
    /// A memory load.
    Load {
        /// Address expression.
        addr: Box<IrExpr>,
        /// Access width.
        width: Width,
    },
    /// A binary operation.
    Binop {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<IrExpr>,
        /// Right operand.
        rhs: Box<IrExpr>,
    },
}

impl IrExpr {
    /// Convenience constructor for [`IrExpr::Binop`].
    pub fn binop(op: BinOp, lhs: IrExpr, rhs: IrExpr) -> IrExpr {
        IrExpr::Binop { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// Convenience constructor: `base + offset` with constant folding for
    /// a zero offset.
    pub fn add_const(base: IrExpr, offset: i32) -> IrExpr {
        if offset == 0 {
            base
        } else {
            IrExpr::binop(BinOp::Add, base, IrExpr::Const(offset as u32))
        }
    }

    /// Convenience constructor for [`IrExpr::Load`].
    pub fn load(addr: IrExpr, width: Width) -> IrExpr {
        IrExpr::Load { addr: Box::new(addr), width }
    }

    /// The constant value, when the expression is a constant.
    pub fn as_const(&self) -> Option<u32> {
        match self {
            IrExpr::Const(v) => Some(*v),
            _ => None,
        }
    }

    /// Registers read anywhere in the tree, in first-use order.
    pub fn regs_read(&self) -> Vec<Reg> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let IrExpr::Get(r) = e {
                if !out.contains(r) {
                    out.push(*r);
                }
            }
        });
        out
    }

    /// Depth-first pre-order visit of every node in the tree.
    pub fn visit(&self, f: &mut impl FnMut(&IrExpr)) {
        f(self);
        match self {
            IrExpr::Const(_) | IrExpr::Get(_) => {}
            IrExpr::Load { addr, .. } => addr.visit(f),
            IrExpr::Binop { lhs, rhs, .. } => {
                lhs.visit(f);
                rhs.visit(f);
            }
        }
    }
}

impl fmt::Display for IrExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrExpr::Const(v) => write!(f, "{v:#x}"),
            IrExpr::Get(r) => write!(f, "{r}"),
            IrExpr::Load { addr, width } => {
                let w = match width {
                    Width::W8 => "8",
                    Width::W16 => "16",
                    Width::W32 => "32",
                };
                write!(f, "mem{w}[{addr}]")
            }
            IrExpr::Binop { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_const_folds_zero() {
        let e = IrExpr::add_const(IrExpr::Get(Reg(1)), 0);
        assert_eq!(e, IrExpr::Get(Reg(1)));
        let e = IrExpr::add_const(IrExpr::Get(Reg(1)), -4);
        assert_eq!(e, IrExpr::binop(BinOp::Add, IrExpr::Get(Reg(1)), IrExpr::Const(0xffff_fffc)));
    }

    #[test]
    fn regs_read_deduplicates_in_order() {
        let e = IrExpr::binop(
            BinOp::Add,
            IrExpr::Get(Reg(2)),
            IrExpr::binop(BinOp::Mul, IrExpr::Get(Reg(1)), IrExpr::Get(Reg(2))),
        );
        assert_eq!(e.regs_read(), vec![Reg(2), Reg(1)]);
    }

    #[test]
    fn cmp_negation() {
        assert_eq!(BinOp::CmpLt.negate_cmp(), BinOp::CmpGe);
        assert_eq!(BinOp::CmpEq.negate_cmp(), BinOp::CmpNe);
        assert!(BinOp::CmpGt.is_cmp());
        assert!(!BinOp::Add.is_cmp());
    }

    #[test]
    #[should_panic(expected = "negate_cmp")]
    fn negate_non_cmp_panics() {
        BinOp::Add.negate_cmp();
    }

    #[test]
    fn display_is_readable() {
        let e = IrExpr::load(
            IrExpr::binop(BinOp::Add, IrExpr::Get(Reg(5)), IrExpr::Const(0x4c)),
            Width::W32,
        );
        assert_eq!(e.to_string(), "mem32[(x5 + 0x4c)]");
    }

    #[test]
    fn width_bytes() {
        assert_eq!(Width::W8.bytes(), 1);
        assert_eq!(Width::W32.bytes(), 4);
    }
}
