//! An architecture-neutral intermediate representation and lifters.
//!
//! DTaint converts guest instructions into a VEX-like IR before any
//! analysis (the paper uses Valgrind's VEX via angr's loader). This crate
//! is the equivalent for the `arm32e`/`mips32e` dialects of
//! [`dtaint_fwbin`]:
//!
//! * [`IrExpr`] — side-effect-free expression trees over guest registers,
//!   memory loads and constants,
//! * [`IrStmt`] — register writes, memory stores, instruction marks and
//!   conditional side exits,
//! * [`IrBlock`] — one basic block with its final jump kind (fall-through,
//!   call, return, indirect),
//! * [`lift::lift_block`] — decodes and lifts a block from a loaded
//!   [`Binary`](dtaint_fwbin::Binary).
//!
//! Architecture differences are normalised here so that every later stage
//! is ISA-agnostic: ARM condition flags become explicit compare operands
//! stashed in the pseudo-registers [`CMP_L`]/[`CMP_R`]; the MIPS `$zero`
//! register reads as the constant 0; `PUSH`/`POP` expand to store/load
//! sequences.
//!
//! # Examples
//!
//! ```
//! use dtaint_fwbin::arm::ArmIns;
//! use dtaint_fwbin::asm::Assembler;
//! use dtaint_fwbin::link::BinaryBuilder;
//! use dtaint_fwbin::{Arch, Reg};
//! use dtaint_ir::lift::lift_block;
//! use dtaint_ir::JumpKind;
//!
//! let mut a = Assembler::new(Arch::Arm32e);
//! a.arm(ArmIns::Ldr { rt: Reg(1), rn: Reg(0), off: 0x4c });
//! a.ret();
//! let mut b = BinaryBuilder::new(Arch::Arm32e);
//! b.add_function("f", a);
//! let bin = b.link()?;
//! let f = bin.function("f").unwrap();
//! let block = lift_block(&bin, f.addr, f.addr + f.size)?;
//! assert_eq!(block.jumpkind, JumpKind::Ret);
//! # Ok::<(), dtaint_fwbin::Error>(())
//! ```

pub mod lift;

mod expr;
mod lift_arm;
mod lift_mips;
mod stmt;

pub use expr::{BinOp, IrExpr, Width};
pub use stmt::{IrBlock, IrStmt, JumpKind};

use dtaint_fwbin::Reg;

/// Pseudo-register holding the left operand of the latest ARM `CMP`.
///
/// Lives outside the architectural file (`Reg(100)`), mirroring VEX's
/// `CC_DEP1` thunk.
pub const CMP_L: Reg = Reg(100);

/// Pseudo-register holding the right operand of the latest ARM `CMP`
/// (VEX's `CC_DEP2`).
pub const CMP_R: Reg = Reg(101);
