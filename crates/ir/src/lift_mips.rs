//! Lifting `mips32e` instructions to IR.

use crate::expr::{BinOp, IrExpr, Width};
use crate::lift::{Lifted, Terminator};
use crate::stmt::IrStmt;
use dtaint_fwbin::mips::MipsIns;
use dtaint_fwbin::{Reg, Result, INS_SIZE};

/// Reads a register, folding `$zero` to the constant 0.
fn get(r: Reg) -> IrExpr {
    if r == Reg::ZERO {
        IrExpr::Const(0)
    } else {
        IrExpr::Get(r)
    }
}

/// Writes a register, discarding writes to `$zero`.
fn put(reg: Reg, value: IrExpr) -> Vec<IrStmt> {
    if reg == Reg::ZERO {
        vec![]
    } else {
        vec![IrStmt::Put { reg, value }]
    }
}

fn binop3(op: BinOp, rd: Reg, rs: Reg, rt: Reg) -> Lifted {
    Lifted::flow(put(rd, IrExpr::binop(op, get(rs), get(rt))))
}

/// Lifts one decoded `mips32e` instruction at `pc`.
///
/// # Errors
///
/// Returns the decode error for an invalid instruction word.
pub(crate) fn lift_ins(word: u32, pc: u32) -> Result<Lifted> {
    use MipsIns::*;
    let ins = MipsIns::decode(word, pc)?;
    let branch_target =
        |off: i16| (pc as i64 + INS_SIZE as i64 + off as i64 * INS_SIZE as i64) as u32;
    let jump_target =
        |off: i32| (pc as i64 + INS_SIZE as i64 + off as i64 * INS_SIZE as i64) as u32;
    Ok(match ins {
        Nop => Lifted::flow(vec![]),
        Addu { rd, rs, rt } => binop3(BinOp::Add, rd, rs, rt),
        Addiu { rt, rs, imm } => Lifted::flow(put(rt, IrExpr::add_const(get(rs), imm as i32))),
        Subu { rd, rs, rt } => binop3(BinOp::Sub, rd, rs, rt),
        And { rd, rs, rt } => binop3(BinOp::And, rd, rs, rt),
        Andi { rt, rs, imm } => {
            Lifted::flow(put(rt, IrExpr::binop(BinOp::And, get(rs), IrExpr::Const(imm as u32))))
        }
        Or { rd, rs, rt } => binop3(BinOp::Or, rd, rs, rt),
        Ori { rt, rs, imm } => {
            Lifted::flow(put(rt, IrExpr::binop(BinOp::Or, get(rs), IrExpr::Const(imm as u32))))
        }
        Xor { rd, rs, rt } => binop3(BinOp::Xor, rd, rs, rt),
        Sll { rd, rt, sh } => {
            Lifted::flow(put(rd, IrExpr::binop(BinOp::Shl, get(rt), IrExpr::Const(sh as u32))))
        }
        Srl { rd, rt, sh } => {
            Lifted::flow(put(rd, IrExpr::binop(BinOp::Shr, get(rt), IrExpr::Const(sh as u32))))
        }
        Mul { rd, rs, rt } => binop3(BinOp::Mul, rd, rs, rt),
        Slt { rd, rs, rt } => binop3(BinOp::CmpLt, rd, rs, rt),
        Slti { rt, rs, imm } => Lifted::flow(put(
            rt,
            IrExpr::binop(BinOp::CmpLt, get(rs), IrExpr::Const(imm as i32 as u32)),
        )),
        Lui { rt, imm } => Lifted::flow(put(rt, IrExpr::Const((imm as u32) << 16))),
        Lw { rt, base, off } => Lifted::flow(put(
            rt,
            IrExpr::load(IrExpr::add_const(get(base), off as i32), Width::W32),
        )),
        Sw { rt, base, off } => Lifted::flow(vec![IrStmt::Store {
            addr: IrExpr::add_const(get(base), off as i32),
            value: get(rt),
            width: Width::W32,
        }]),
        Lb { rt, base, off } => {
            Lifted::flow(put(rt, IrExpr::load(IrExpr::add_const(get(base), off as i32), Width::W8)))
        }
        Sb { rt, base, off } => Lifted::flow(vec![IrStmt::Store {
            addr: IrExpr::add_const(get(base), off as i32),
            value: get(rt),
            width: Width::W8,
        }]),
        Lh { rt, base, off } => Lifted::flow(put(
            rt,
            IrExpr::load(IrExpr::add_const(get(base), off as i32), Width::W16),
        )),
        Sh { rt, base, off } => Lifted::flow(vec![IrStmt::Store {
            addr: IrExpr::add_const(get(base), off as i32),
            value: get(rt),
            width: Width::W16,
        }]),
        Beq { rs, rt, off } => {
            let target = branch_target(off);
            if rs == rt {
                // beq x, x is always taken — the assembler's `jump` idiom.
                Lifted::end(vec![], Terminator::Jump(IrExpr::Const(target)))
            } else {
                Lifted::end(
                    vec![IrStmt::Exit {
                        cond: IrExpr::binop(BinOp::CmpEq, get(rs), get(rt)),
                        target,
                    }],
                    Terminator::CondBranch,
                )
            }
        }
        Bne { rs, rt, off } => {
            if rs == rt {
                // bne x, x is never taken; plain fall-through.
                Lifted::flow(vec![])
            } else {
                Lifted::end(
                    vec![IrStmt::Exit {
                        cond: IrExpr::binop(BinOp::CmpNe, get(rs), get(rt)),
                        target: branch_target(off),
                    }],
                    Terminator::CondBranch,
                )
            }
        }
        Blez { rs, off } => Lifted::end(
            vec![IrStmt::Exit {
                cond: IrExpr::binop(BinOp::CmpLe, get(rs), IrExpr::Const(0)),
                target: branch_target(off),
            }],
            Terminator::CondBranch,
        ),
        Bgtz { rs, off } => Lifted::end(
            vec![IrStmt::Exit {
                cond: IrExpr::binop(BinOp::CmpGt, get(rs), IrExpr::Const(0)),
                target: branch_target(off),
            }],
            Terminator::CondBranch,
        ),
        J { off } => Lifted::end(vec![], Terminator::Jump(IrExpr::Const(jump_target(off)))),
        Jal { off } => {
            let return_to = pc + INS_SIZE;
            Lifted::end(
                put(Reg::RA, IrExpr::Const(return_to)),
                Terminator::Call { next: IrExpr::Const(jump_target(off)), return_to },
            )
        }
        Jalr { rs } => {
            let return_to = pc + INS_SIZE;
            Lifted::end(
                put(Reg::RA, IrExpr::Const(return_to)),
                Terminator::Call { next: get(rs), return_to },
            )
        }
        Jr { rs } => {
            if rs == Reg::RA {
                Lifted::end(vec![], Terminator::Ret(get(Reg::RA)))
            } else {
                Lifted::end(vec![], Terminator::Jump(get(rs)))
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lift(ins: MipsIns, pc: u32) -> Lifted {
        lift_ins(ins.encode().unwrap(), pc).unwrap()
    }

    #[test]
    fn lui_materialises_high_half() {
        let l = lift(MipsIns::Lui { rt: Reg(4), imm: 0x1234 }, 0);
        assert_eq!(l.stmts, vec![IrStmt::Put { reg: Reg(4), value: IrExpr::Const(0x1234_0000) }]);
    }

    #[test]
    fn slt_produces_boolean_compare() {
        let l = lift(MipsIns::Slt { rd: Reg(8), rs: Reg(4), rt: Reg(5) }, 0);
        assert_eq!(
            l.stmts,
            vec![IrStmt::Put {
                reg: Reg(8),
                value: IrExpr::binop(BinOp::CmpLt, IrExpr::Get(Reg(4)), IrExpr::Get(Reg(5))),
            }]
        );
    }

    #[test]
    fn bne_same_register_falls_through() {
        let l = lift(MipsIns::Bne { rs: Reg(4), rt: Reg(4), off: 5 }, 0);
        assert!(l.terminator.is_none());
        assert!(l.stmts.is_empty());
    }

    #[test]
    fn blez_compares_against_zero() {
        let l = lift(MipsIns::Blez { rs: Reg(2), off: 3 }, 0x100);
        assert_eq!(
            l.stmts,
            vec![IrStmt::Exit {
                cond: IrExpr::binop(BinOp::CmpLe, IrExpr::Get(Reg(2)), IrExpr::Const(0)),
                target: 0x100 + 4 + 12,
            }]
        );
    }

    #[test]
    fn jalr_is_indirect_call() {
        let l = lift(MipsIns::Jalr { rs: Reg(25) }, 0x40);
        match l.terminator {
            Some(Terminator::Call { next: IrExpr::Get(r), return_to }) => {
                assert_eq!(r, Reg(25));
                assert_eq!(return_to, 0x44);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(l.stmts, vec![IrStmt::Put { reg: Reg::RA, value: IrExpr::Const(0x44) }]);
    }

    #[test]
    fn jr_non_ra_is_indirect_jump() {
        let l = lift(MipsIns::Jr { rs: Reg(25) }, 0);
        assert!(matches!(l.terminator, Some(Terminator::Jump(IrExpr::Get(Reg(25))))));
    }

    #[test]
    fn lh_sh_are_halfword_accesses() {
        let l = lift(MipsIns::Lh { rt: Reg(8), base: Reg(4), off: 4 }, 0);
        assert!(matches!(
            &l.stmts[0],
            IrStmt::Put { value: crate::IrExpr::Load { width: Width::W16, .. }, .. }
        ));
        let l = lift(MipsIns::Sh { rt: Reg(8), base: Reg(4), off: 4 }, 0);
        assert!(matches!(&l.stmts[0], IrStmt::Store { width: Width::W16, .. }));
    }

    #[test]
    fn sb_is_byte_store() {
        let l = lift(MipsIns::Sb { rt: Reg(8), base: Reg(4), off: 1 }, 0);
        assert!(matches!(&l.stmts[0], IrStmt::Store { width: Width::W8, .. }));
    }
}
