//! The append-only run journal behind `dtaint batch --resume`.
//!
//! One JSONL line per *completed* image: name, a content hash of the
//! image file, the analysis config tag, the report file name, the
//! outcome, and the full fold inputs (the deduplicated [`ScanFinding`]
//! list plus cache counters). A resumed run skips every journaled image
//! whose content hash and config still match, reuses the journaled fold
//! inputs, and re-scans only the rest — so the final findings database
//! and `corpus.json` are byte-identical to an uninterrupted run.
//!
//! The journal is strictly weaker than the database: the db is written
//! once, atomically, at the end of a *complete* run, while the journal
//! records progress durably after each image. A crash therefore leaves
//! the old db plus a journal prefix; resume replays the prefix and
//! finishes the suffix. A completed run deletes its journal.
//!
//! Appends go through [`crate::atomic::append_durable`] (fsync per
//! line); a crash mid-append leaves one partial trailing line, which
//! [`crate::StoreDir::load_journal`] counts and discards.

use crate::ScanFinding;
use dtaint_telemetry::MetricsRegistry;
use serde::{Deserialize, Serialize};

/// How an image's scan ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum JournalOutcome {
    /// Scanned cleanly; `findings` are the fold inputs.
    Ok,
    /// The image could not be scanned (`error` says why). Final: a
    /// resumed run does not retry it.
    Error,
    /// The per-image deadline expired. Not final: a resumed run
    /// re-scans the image (wall-clock is not a property of the image).
    Timeout,
}

/// One journal line — everything `batch` needs to fold the image into
/// the corpus summary and findings database without re-scanning it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalEntry {
    /// Journal format version.
    pub v: u32,
    /// Image name (file stem, the store's image key).
    pub image: String,
    /// FNV-1a 64 of the image file bytes, 16 hex digits — a resumed
    /// run re-scans when the file changed underneath the journal.
    pub content: String,
    /// Semantic-config tag (alias mode etc.); a resumed run re-scans
    /// when the configuration changed.
    pub config: String,
    /// Report file name under the reports dir, when one was written.
    pub report: Option<String>,
    /// How the scan ended.
    pub outcome: JournalOutcome,
    /// Error message for [`JournalOutcome::Error`]/`Timeout`.
    pub error: Option<String>,
    /// Number of executables scanned.
    pub binaries: usize,
    /// Deduplicated fold inputs (one exemplar per fingerprint).
    pub findings: Vec<ScanFinding>,
    /// Symex-level cache hits during this image's scan.
    pub sym_hits: u64,
    /// Symex-level cache misses.
    pub sym_misses: u64,
    /// DDG-level cache hits.
    pub ddg_hits: u64,
    /// DDG-level cache misses.
    pub ddg_misses: u64,
    /// Cache entries invalidated during this image's scan (v2).
    #[serde(default)]
    pub invalidations: u64,
    /// The image's merged report [`MetricsRegistry`] — logical counters
    /// only, so a resumed run rebuilds the corpus rollup bit-identically
    /// without re-scanning (v2).
    #[serde(default)]
    pub metrics: MetricsRegistry,
}

/// Current journal line version. v2 added `invalidations` and the
/// per-image `metrics` registry for the corpus rollup; v1 journals are
/// discarded on load (their images simply re-scan — the journal is
/// advisory progress, never ground truth).
pub const JOURNAL_VERSION: u32 = 2;

/// What a journal load found.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JournalLoad {
    /// Parsed entries in file order (a resumed-then-resumed run may
    /// hold several entries per image; the last one wins).
    pub entries: Vec<JournalEntry>,
    /// Unparseable lines discarded (a crash mid-append leaves at most
    /// one, at the tail).
    pub discarded_lines: usize,
}

/// Parses journal bytes, tolerating a torn tail.
#[must_use]
pub fn parse_journal(bytes: &[u8]) -> JournalLoad {
    let mut out = JournalLoad::default();
    for line in bytes.split(|&b| b == b'\n') {
        if line.is_empty() {
            continue;
        }
        match serde_json::from_slice::<JournalEntry>(line) {
            Ok(e) if e.v == JOURNAL_VERSION => out.entries.push(e),
            _ => out.discarded_lines += 1,
        }
    }
    out
}

/// Serializes one entry as a journal line (newline-terminated).
///
/// # Errors
///
/// Propagates serialization failures (structurally impossible for the
/// derived types, kept for API honesty).
pub fn encode_entry(entry: &JournalEntry) -> Result<Vec<u8>, serde_json::Error> {
    let mut line = serde_json::to_vec(entry)?;
    line.push(b'\n');
    Ok(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(image: &str, outcome: JournalOutcome) -> JournalEntry {
        JournalEntry {
            v: JOURNAL_VERSION,
            image: image.into(),
            content: "00000000deadbeef".into(),
            config: "alias:sse".into(),
            report: Some(format!("{image}.json")),
            outcome,
            error: None,
            binaries: 1,
            findings: vec![ScanFinding {
                fingerprint: "abcd".into(),
                vulnerable: true,
                sink: "memcpy".into(),
                sink_fn: "parse".into(),
            }],
            sym_hits: 3,
            sym_misses: 1,
            ddg_hits: 2,
            ddg_misses: 2,
            invalidations: 1,
            metrics: {
                let mut m = MetricsRegistry::default();
                m.inc("symex.blocks_executed", 42);
                m
            },
        }
    }

    #[test]
    fn round_trips_and_tolerates_torn_tail() {
        let a = entry("router", JournalOutcome::Ok);
        let b = entry("camera", JournalOutcome::Error);
        let mut bytes = encode_entry(&a).unwrap();
        bytes.extend(encode_entry(&b).unwrap());
        // A crash mid-append: half of a third line.
        let torn = encode_entry(&entry("nas", JournalOutcome::Ok)).unwrap();
        bytes.extend(&torn[..torn.len() / 2]);
        let load = parse_journal(&bytes);
        assert_eq!(load.entries, vec![a, b]);
        assert_eq!(load.discarded_lines, 1);
    }

    #[test]
    fn unknown_version_is_discarded() {
        let mut e = entry("router", JournalOutcome::Ok);
        e.v = 999;
        let bytes = encode_entry(&e).unwrap();
        let load = parse_journal(&bytes);
        assert!(load.entries.is_empty());
        assert_eq!(load.discarded_lines, 1);
    }

    #[test]
    fn missing_v2_fields_default_to_empty() {
        // A v2 line without the rollup fields (e.g. written by a tool
        // that only knows the required keys) parses with defaults.
        let line = br#"{"v":2,"image":"router","content":"00000000deadbeef","config":"alias:sse","report":null,"outcome":"Ok","error":null,"binaries":1,"findings":[],"sym_hits":0,"sym_misses":0,"ddg_hits":0,"ddg_misses":0}"#;
        let load = parse_journal(line);
        assert_eq!(load.entries.len(), 1);
        assert_eq!(load.entries[0].invalidations, 0);
        assert_eq!(load.entries[0].metrics, MetricsRegistry::default());
    }

    #[test]
    fn empty_journal_is_empty() {
        assert_eq!(parse_journal(b""), JournalLoad::default());
        assert_eq!(parse_journal(b"\n\n"), JournalLoad::default());
    }
}
