//! Durable filesystem primitives with injectable faults.
//!
//! Every store artifact (`findings.json`, `summaries.dtc`, per-image
//! reports, `corpus.json`) is written through [`atomic_write`]:
//! temp-file + fsync + rename + directory fsync, so a reader never
//! observes a half-written file — after a crash at *any* step the path
//! holds either the complete old version or the complete new one. The
//! run journal is appended through [`append_durable`] (O_APPEND +
//! fsync); a crash mid-append leaves at most one partial trailing line,
//! which the journal loader discards.
//!
//! All operations route through a [`FaultFs`], a shim over the real
//! filesystem whose [`FaultPlan`] can inject `ENOSPC`/`EINTR`-style
//! errors at any single step, or simulate the process dying at a chosen
//! point (every operation after the kill fails). Production code uses
//! the default pass-through plan; the crash-drill tests enumerate
//! failure at every write step and assert the old-or-new invariant.
//!
//! Transient errors (`EINTR`-class kinds) are retried with a short
//! bounded backoff inside [`atomic_write`]/[`append_durable`];
//! permanent ones (`ENOSPC`, injected kills) propagate to the caller.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

/// FNV-1a 64 over a byte slice — the store's content hash (image
/// bytes for journal entries, corrupt-db sidecar names).
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One class of filesystem operation the shim can fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsOp {
    /// Creating the temp file of an atomic write.
    CreateTmp,
    /// Writing the payload bytes (a failure here leaves a partial temp
    /// file, like a process dying mid-`write(2)`).
    WriteChunk,
    /// `fsync` of the temp file.
    SyncFile,
    /// The rename that publishes the new version.
    Rename,
    /// `fsync` of the containing directory.
    SyncDir,
    /// One durable journal append (open + write + fsync).
    Append,
}

/// What the shim should do to incoming operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPlan {
    /// Pass everything through (production).
    None,
    /// Fail the `index`-th checked operation (zero-based, counted
    /// across all kinds) exactly once with `kind`, then pass through.
    FailOp {
        /// Which operation to fail.
        index: u64,
        /// The injected error kind (`Interrupted` is retried by the
        /// durable writers; `StorageFull` etc. propagate).
        kind: io::ErrorKind,
    },
    /// After `appends` successful [`FsOp::Append`] operations, every
    /// subsequent operation fails — the process "died" at that commit
    /// point. `dtaint batch --drill-io kill-after-appends:N` maps here.
    KillAfterAppends {
        /// Successful appends before death.
        appends: u64,
    },
}

#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    ops: u64,
    appends_ok: u64,
    injected: u64,
    fired: bool,
}

/// The injectable filesystem shim. One instance is shared by a
/// [`crate::StoreDir`] and everything writing through it.
#[derive(Debug)]
pub struct FaultFs {
    state: Mutex<FaultState>,
}

impl Default for FaultFs {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultFs {
    /// A pass-through shim (no injected faults).
    #[must_use]
    pub fn new() -> Self {
        Self::with_plan(FaultPlan::None)
    }

    /// A shim executing `plan`.
    #[must_use]
    pub fn with_plan(plan: FaultPlan) -> Self {
        FaultFs {
            state: Mutex::new(FaultState {
                plan,
                ops: 0,
                appends_ok: 0,
                injected: 0,
                fired: false,
            }),
        }
    }

    /// Errors injected so far (for asserting a drill actually fired).
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.state.lock().unwrap().injected
    }

    /// Total operations checked so far.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.state.lock().unwrap().ops
    }

    /// Gate one operation through the plan.
    fn check(&self, op: FsOp) -> io::Result<()> {
        let mut g = self.state.lock().unwrap();
        let index = g.ops;
        g.ops += 1;
        match g.plan {
            FaultPlan::None => Ok(()),
            FaultPlan::FailOp { index: want, kind } => {
                if index == want && !g.fired {
                    g.fired = true;
                    g.injected += 1;
                    Err(io::Error::new(kind, format!("injected fault at {op:?} (op {index})")))
                } else {
                    Ok(())
                }
            }
            FaultPlan::KillAfterAppends { appends } => {
                if g.appends_ok >= appends {
                    g.injected += 1;
                    Err(io::Error::other(format!("injected kill at {op:?} (op {index})")))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Records one completed journal append (drives `KillAfterAppends`).
    fn note_append_ok(&self) {
        self.state.lock().unwrap().appends_ok += 1;
    }
}

/// Retry budget for transient errors.
const MAX_RETRIES: u32 = 3;

fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn with_retries(mut body: impl FnMut() -> io::Result<()>) -> io::Result<()> {
    let mut attempt = 0u32;
    loop {
        match body() {
            Ok(()) => return Ok(()),
            Err(e) if is_transient(&e) && attempt < MAX_RETRIES => {
                attempt += 1;
                std::thread::sleep(Duration::from_millis(u64::from(attempt)));
            }
            Err(e) => return Err(e),
        }
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|s| s.to_os_string()).unwrap_or_default();
    name.push(format!(".tmp-{}", std::process::id()));
    path.with_file_name(name)
}

/// Writes `bytes` to `path` atomically: temp file in the same
/// directory, fsync, rename over the target, directory fsync. After any
/// crash or error, `path` holds either its previous content or `bytes`,
/// never a mixture. Transient errors are retried with bounded backoff.
///
/// # Errors
///
/// Propagates persistent IO failures (the target is left untouched; a
/// stale temp file may remain and is ignored by every reader).
pub fn atomic_write(fs: &FaultFs, path: &Path, bytes: &[u8]) -> io::Result<()> {
    with_retries(|| {
        let tmp = tmp_path(path);
        let res = (|| {
            fs.check(FsOp::CreateTmp)?;
            let mut f = File::create(&tmp)?;
            match fs.check(FsOp::WriteChunk) {
                Ok(()) => f.write_all(bytes)?,
                Err(e) => {
                    // Simulate dying mid-write: a prefix lands in the
                    // temp file, which the rename never publishes.
                    let _ = f.write_all(&bytes[..bytes.len() / 2]);
                    return Err(e);
                }
            }
            fs.check(FsOp::SyncFile)?;
            f.sync_all()?;
            drop(f);
            fs.check(FsOp::Rename)?;
            std::fs::rename(&tmp, path)?;
            fs.check(FsOp::SyncDir)?;
            if let Some(dir) = path.parent() {
                if let Ok(d) = File::open(dir) {
                    let _ = d.sync_all();
                }
            }
            Ok(())
        })();
        if res.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        res
    })
}

/// Appends `bytes` to `path` durably (create + `O_APPEND` + fsync).
/// A crash mid-append leaves at most one partial trailing record.
///
/// # Errors
///
/// Propagates persistent IO failures after bounded transient retries.
pub fn append_durable(fs: &FaultFs, path: &Path, bytes: &[u8]) -> io::Result<()> {
    with_retries(|| {
        fs.check(FsOp::Append)?;
        let mut f = OpenOptions::new().create(true).append(true).open(path)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs.note_append_ok();
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "dtaint-atomic-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"a"), fnv64(b"b"));
        assert_eq!(fnv64(b"abc"), fnv64(b"abc"));
    }

    /// The acceptance drill: inject a permanent failure at every write
    /// step in turn; the target must always hold exactly the old or the
    /// new version, never a prefix or a mixture.
    #[test]
    fn failure_at_every_step_leaves_old_or_new() {
        let dir = tdir("steps");
        let target = dir.join("artifact.json");
        let old = b"OLD-CONTENT-OLD-CONTENT".to_vec();
        let new = b"NEW-CONTENT-NEW-CONTENT-LONGER".to_vec();
        // 5 checked ops per atomic_write attempt.
        for step in 0..5u64 {
            atomic_write(&FaultFs::new(), &target, &old).unwrap();
            let fs =
                FaultFs::with_plan(FaultPlan::FailOp { index: step, kind: io::ErrorKind::Other });
            let res = atomic_write(&fs, &target, &new);
            let on_disk = std::fs::read(&target).unwrap();
            // A failure injected after the rename (the SyncDir step)
            // legitimately leaves the new version published; every
            // earlier failure must leave the old one. Never a mixture.
            assert!(
                on_disk == old || (on_disk == new && step == 4),
                "step {step} ({res:?}): on-disk content is neither old nor complete-new"
            );
            assert_eq!(fs.injected(), 1, "step {step}: drill fired");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn first_write_failure_leaves_no_file() {
        let dir = tdir("first");
        let target = dir.join("fresh.json");
        for step in 0..4u64 {
            let fs = FaultFs::with_plan(FaultPlan::FailOp {
                index: step,
                kind: io::ErrorKind::StorageFull,
            });
            let res = atomic_write(&fs, &target, b"payload");
            if res.is_err() && step < 3 {
                assert!(!target.exists(), "step {step}: no partial file published");
            }
            std::fs::remove_file(&target).ok();
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_errors_are_retried_to_success() {
        let dir = tdir("retry");
        let target = dir.join("retried.json");
        for step in 0..5u64 {
            let fs = FaultFs::with_plan(FaultPlan::FailOp {
                index: step,
                kind: io::ErrorKind::Interrupted,
            });
            atomic_write(&fs, &target, b"payload").unwrap();
            assert_eq!(std::fs::read(&target).unwrap(), b"payload");
            assert_eq!(fs.injected(), 1, "step {step}: EINTR injected once then retried");
        }
        // Appends retry too.
        let journal = dir.join("j.jsonl");
        let fs =
            FaultFs::with_plan(FaultPlan::FailOp { index: 0, kind: io::ErrorKind::Interrupted });
        append_durable(&fs, &journal, b"line-1\n").unwrap();
        append_durable(&fs, &journal, b"line-2\n").unwrap();
        assert_eq!(std::fs::read(&journal).unwrap(), b"line-1\nline-2\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kill_after_appends_fails_everything_after_the_commit_point() {
        let dir = tdir("kill");
        let journal = dir.join("j.jsonl");
        let fs = FaultFs::with_plan(FaultPlan::KillAfterAppends { appends: 2 });
        append_durable(&fs, &journal, b"a\n").unwrap();
        append_durable(&fs, &journal, b"b\n").unwrap();
        assert!(append_durable(&fs, &journal, b"c\n").is_err(), "dead after 2 appends");
        assert!(atomic_write(&fs, &dir.join("x"), b"x").is_err(), "all ops dead");
        assert_eq!(std::fs::read(&journal).unwrap(), b"a\nb\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
