//! Pid-stamped store locking with stale-lock detection.
//!
//! Two concurrent `dtaint batch` runs over one store would interleave
//! journal appends and race the cache/db snapshots. [`StoreLock`]
//! serializes them: a `lock` file in the store root holds the owning
//! pid; acquisition fails while that process is alive and steals the
//! lock (with a report) when it is dead — the survivor of a `kill -9`
//! must not be fenced out by its own corpse.
//!
//! The lock is advisory and release goes through the *real* filesystem
//! (never the fault shim): an injected "kill" drill simulates the data
//! path dying, while the test harness around it is still alive to clean
//! up — exactly like a real crashed process whose next invocation takes
//! the stale-lock path.

use std::io;
use std::path::{Path, PathBuf};

/// Why a lock could not be acquired.
#[derive(Debug)]
pub enum LockError {
    /// Another live process holds the store.
    Held {
        /// The owning pid from the lock file.
        pid: u32,
        /// The lock file path (for error messages).
        path: PathBuf,
    },
    /// Filesystem trouble while acquiring.
    Io(io::Error),
}

impl std::fmt::Display for LockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockError::Held { pid, path } => {
                write!(f, "store is locked by running process {pid} ({})", path.display())
            }
            LockError::Io(e) => write!(f, "store lock: {e}"),
        }
    }
}

/// Is `pid` a live process? Linux: `/proc/<pid>` exists. Elsewhere we
/// cannot tell and err on the side of staleness (a wrongly-stolen lock
/// degrades to the pre-lock behavior; a wrongly-honored one deadlocks
/// every future run). Public so `dtaint status` can tell a live batch
/// from a crashed one by the same rule the lock uses.
#[must_use]
pub fn pid_alive(pid: u32) -> bool {
    if Path::new("/proc").is_dir() {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        false
    }
}

/// RAII guard over the store's `lock` file; dropping releases it.
#[derive(Debug)]
pub struct StoreLock {
    path: PathBuf,
}

impl StoreLock {
    /// Acquires the lock file at `path` for the current process.
    /// Returns the guard plus the stale pid that was evicted, if any.
    ///
    /// # Errors
    ///
    /// [`LockError::Held`] when a live process owns the lock;
    /// [`LockError::Io`] on filesystem failures.
    pub fn acquire(path: &Path) -> Result<(StoreLock, Option<u32>), LockError> {
        let mut stole: Option<u32> = None;
        for _ in 0..2 {
            match std::fs::OpenOptions::new().write(true).create_new(true).open(path) {
                Ok(mut f) => {
                    use std::io::Write;
                    write!(f, "{}", std::process::id()).map_err(LockError::Io)?;
                    f.sync_all().map_err(LockError::Io)?;
                    return Ok((StoreLock { path: path.to_path_buf() }, stole));
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let owner: Option<u32> =
                        std::fs::read_to_string(path).ok().and_then(|s| s.trim().parse().ok());
                    match owner {
                        Some(pid) if pid != std::process::id() && pid_alive(pid) => {
                            return Err(LockError::Held { pid, path: path.to_path_buf() });
                        }
                        // Dead owner, our own earlier self, or an
                        // unreadable file: stale — evict and retry once.
                        other => {
                            stole = other;
                            std::fs::remove_file(path).map_err(LockError::Io)?;
                        }
                    }
                }
                Err(e) => return Err(LockError::Io(e)),
            }
        }
        Err(LockError::Io(io::Error::other("lock file reappeared while stealing")))
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "dtaint-lock-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn acquire_release_reacquire() {
        let dir = tdir("rr");
        let path = dir.join("lock");
        let (guard, stole) = StoreLock::acquire(&path).unwrap();
        assert!(stole.is_none());
        assert!(path.exists());
        drop(guard);
        assert!(!path.exists(), "drop releases");
        let (_g, stole) = StoreLock::acquire(&path).unwrap();
        assert!(stole.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn live_foreign_owner_is_refused() {
        let dir = tdir("held");
        let path = dir.join("lock");
        // Pid 1 (init) is always alive on Linux.
        std::fs::write(&path, "1").unwrap();
        match StoreLock::acquire(&path) {
            Err(LockError::Held { pid: 1, .. }) => {}
            other => panic!("expected Held, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dead_owner_is_stolen_with_report() {
        let dir = tdir("stale");
        let path = dir.join("lock");
        // Far beyond any real pid_max.
        std::fs::write(&path, "3999999999").unwrap();
        let (_g, stole) = StoreLock::acquire(&path).unwrap();
        assert_eq!(stole, Some(3_999_999_999));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn own_pid_residue_is_treated_as_stale() {
        // A lock left by this same pid (a previous drill-killed batch in
        // this very process) must not fence us out forever.
        let dir = tdir("self");
        let path = dir.join("lock");
        std::fs::write(&path, format!("{}", std::process::id())).unwrap();
        let (_g, stole) = StoreLock::acquire(&path).unwrap();
        assert_eq!(stole, Some(std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_lock_content_is_stale() {
        let dir = tdir("garbage");
        let path = dir.join("lock");
        std::fs::write(&path, "not-a-pid").unwrap();
        let (_g, stole) = StoreLock::acquire(&path).unwrap();
        assert!(stole.is_none(), "unreadable owner reported as none");
        std::fs::remove_dir_all(&dir).ok();
    }
}
