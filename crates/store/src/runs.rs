//! The append-only run history behind `dtaint history`.
//!
//! Every *completed* `dtaint batch` run appends one [`RunSummary`] line
//! to `<store>/runs.jsonl`: config tag, image counts by outcome,
//! finding deltas, cache traffic, salvage counters, and wall time. The
//! file is advisory trend data — it is never read back into analysis,
//! is excluded from the `--resume` byte-identity contract (it carries
//! wall-clock), and a missing or torn file costs nothing but history.
//!
//! Like the journal, lines are versioned and a load discards what it
//! cannot parse, so the format can grow without migrations.

use serde::{Deserialize, Serialize};

/// Version stamp on [`RunSummary`]; bump on schema changes.
pub const RUN_VERSION: u32 = 1;

/// One completed batch run, as recorded in `runs.jsonl`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Record format version ([`RUN_VERSION`]).
    pub v: u32,
    /// Seconds since the Unix epoch when the run started.
    pub started_unix: u64,
    /// Wall-clock duration of the run, milliseconds.
    pub wall_ms: u64,
    /// Semantic-config tag (alias mode, cache on/off).
    pub config: String,
    /// Findings-db generation after this run's commits.
    pub generation: u64,
    /// Total images in the corpus.
    pub images: usize,
    /// Images scanned cleanly.
    pub ok: usize,
    /// Images that failed to scan.
    pub failures: usize,
    /// Images that hit the per-image deadline.
    pub timeouts: usize,
    /// Images replayed from the journal by `--resume`.
    pub resumed: usize,
    /// Images whose scan was this image's first (baseline).
    pub baselines: usize,
    /// New fingerprints across all images.
    pub new_findings: usize,
    /// Re-opened fingerprints across all images.
    pub reopened: usize,
    /// Resolved fingerprints across all images.
    pub resolved: usize,
    /// Images whose delta was a regression (drives exit code 2).
    pub regressions: usize,
    /// Open vulnerable findings corpus-wide after the run.
    pub open_vulnerable: usize,
    /// Symbolic-summary cache hits / misses across the run.
    pub sym_hits: u64,
    /// Symbolic-summary cache misses.
    pub sym_misses: u64,
    /// DDG slice cache hits.
    pub ddg_hits: u64,
    /// DDG slice cache misses.
    pub ddg_misses: u64,
    /// Cache entries invalidated by content/config drift.
    pub invalidations: u64,
    /// Entries in the summary cache after the final snapshot.
    pub cache_entries: usize,
    /// Journal lines discarded on load (torn tail, version drift).
    pub journal_discarded: usize,
}

impl RunSummary {
    /// Combined cache hit rate in `[0, 1]` (0 when no traffic).
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.sym_hits + self.ddg_hits;
        let total = hits + self.sym_misses + self.ddg_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// What a history load found.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunsLoad {
    /// Parsed run records in file (chronological) order.
    pub runs: Vec<RunSummary>,
    /// Unparseable or version-mismatched lines discarded.
    pub discarded_lines: usize,
}

/// Parses `runs.jsonl` bytes, tolerating a torn tail and unknown
/// versions.
#[must_use]
pub fn parse_runs(bytes: &[u8]) -> RunsLoad {
    let mut out = RunsLoad::default();
    for line in bytes.split(|&b| b == b'\n') {
        if line.is_empty() {
            continue;
        }
        match serde_json::from_slice::<RunSummary>(line) {
            Ok(r) if r.v == RUN_VERSION => out.runs.push(r),
            _ => out.discarded_lines += 1,
        }
    }
    out
}

/// Serializes one run record as a JSONL line (newline-terminated).
///
/// # Errors
///
/// Propagates serialization failures.
pub fn encode_run(run: &RunSummary) -> Result<Vec<u8>, serde_json::Error> {
    let mut line = serde_json::to_vec(run)?;
    line.push(b'\n');
    Ok(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(gen: u64) -> RunSummary {
        RunSummary {
            v: RUN_VERSION,
            started_unix: 1_700_000_000,
            wall_ms: 1234,
            config: "alias=sse;cache=on".into(),
            generation: gen,
            images: 3,
            ok: 2,
            failures: 1,
            timeouts: 0,
            resumed: 0,
            baselines: 3,
            new_findings: 5,
            reopened: 0,
            resolved: 0,
            regressions: 0,
            open_vulnerable: 4,
            sym_hits: 10,
            sym_misses: 90,
            ddg_hits: 5,
            ddg_misses: 45,
            invalidations: 0,
            cache_entries: 100,
            journal_discarded: 0,
        }
    }

    #[test]
    fn round_trips_and_tolerates_torn_tail() {
        let a = run(3);
        let b = run(6);
        let mut bytes = encode_run(&a).unwrap();
        bytes.extend(encode_run(&b).unwrap());
        let torn = encode_run(&run(9)).unwrap();
        bytes.extend(&torn[..torn.len() / 2]);
        let load = parse_runs(&bytes);
        assert_eq!(load.runs, vec![a, b]);
        assert_eq!(load.discarded_lines, 1);
    }

    #[test]
    fn unknown_version_is_discarded() {
        let mut r = run(1);
        r.v = 999;
        let load = parse_runs(&encode_run(&r).unwrap());
        assert!(load.runs.is_empty());
        assert_eq!(load.discarded_lines, 1);
    }

    #[test]
    fn hit_rate_handles_zero_traffic() {
        let mut r = RunSummary::default();
        assert_eq!(r.cache_hit_rate(), 0.0);
        r.sym_hits = 3;
        r.sym_misses = 1;
        assert!((r.cache_hit_rate() - 0.75).abs() < 1e-9);
    }
}
