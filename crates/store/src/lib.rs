//! Persistent corpus store for `dtaint batch`.
//!
//! A [`StoreDir`] is a directory holding everything a corpus scan wants
//! to keep between runs:
//!
//! * `findings.json` — the [`FindingsDb`]: per image, every finding
//!   ever seen, keyed by its content-addressed fingerprint, with a
//!   lifecycle status (`Open`/`Resolved`) and first/last-seen
//!   generation numbers,
//! * `summaries.dtc` — the incremental summary cache (written by the
//!   caller via `SummaryCache::save`; this crate only names the path),
//! * `reports/` — one `scan --json` report per image per run.
//!
//! [`FindingsDb::record_scan`] folds one image's scan results into the
//! database and returns a [`ScanDelta`] in `dtaint diff` terms: new,
//! re-opened, and resolved fingerprints. The first scan of an image is
//! its *baseline* and can never regress; afterwards a new vulnerable
//! finding or a re-opened one makes [`ScanDelta::is_regression`] true,
//! which `dtaint batch` turns into exit code 2.

pub mod atomic;
pub mod journal;
pub mod lock;
pub mod runs;

pub use atomic::{append_durable, atomic_write, fnv64, FaultFs, FaultPlan, FsOp};
pub use journal::{JournalEntry, JournalLoad, JournalOutcome, JOURNAL_VERSION};
pub use lock::{pid_alive, LockError, StoreLock};
pub use runs::{encode_run, parse_runs, RunSummary, RunsLoad, RUN_VERSION};

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Lifecycle of a stored finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FindingStatus {
    /// Present in the image's latest scan.
    Open,
    /// Present in some earlier scan, absent from the latest.
    Resolved,
}

/// One finding's history within one image.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoredFinding {
    /// Whether the latest sighting was vulnerable (vs sanitized).
    pub vulnerable: bool,
    /// Present in the latest scan, or resolved earlier.
    pub status: FindingStatus,
    /// Generation of the scan that first reported this fingerprint.
    pub first_seen: u64,
    /// Generation of the most recent scan that reported it.
    pub last_seen: u64,
    /// Sink name (`memcpy`, `system`, …).
    pub sink: String,
    /// Function containing the sink.
    pub sink_fn: String,
}

/// Every finding ever recorded for one image, keyed by fingerprint.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImageRecord {
    /// Fingerprint → finding history.
    pub findings: BTreeMap<String, StoredFinding>,
}

/// The whole corpus database.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FindingsDb {
    /// Monotone scan counter; each `record_scan` call is one generation.
    pub generation: u64,
    /// Image name → record. An image scanned with zero findings still
    /// has an (empty) record, so its next scan is not a baseline.
    pub images: BTreeMap<String, ImageRecord>,
}

/// One finding as fed into [`FindingsDb::record_scan`] — the projection
/// of a report finding that the store tracks. Serializable because the
/// run journal records each image's fold inputs verbatim.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanFinding {
    /// Content-addressed fingerprint (16 hex digits).
    pub fingerprint: String,
    /// Unsanitized flow?
    pub vulnerable: bool,
    /// Sink name.
    pub sink: String,
    /// Function containing the sink.
    pub sink_fn: String,
}

/// What changed for one image in one scan, relative to the store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanDelta {
    /// First scan of this image — everything is new by definition.
    pub is_baseline: bool,
    /// Fingerprints never seen before in this image.
    pub new: Vec<String>,
    /// Fingerprints that were resolved (or sanitized) and came back
    /// vulnerable.
    pub reopened: Vec<String>,
    /// Previously open fingerprints absent from this scan.
    pub resolved: Vec<String>,
    /// New **vulnerable** fingerprints (subset of `new`).
    pub new_vulnerable: usize,
}

impl ScanDelta {
    /// A regression is a new vulnerable finding or a re-opened one in a
    /// non-baseline scan; baselines establish the ledger, they never
    /// regress.
    #[must_use]
    pub fn is_regression(&self) -> bool {
        !self.is_baseline && (self.new_vulnerable > 0 || !self.reopened.is_empty())
    }
}

impl FindingsDb {
    /// Folds one image's scan into the database.
    pub fn record_scan(&mut self, image: &str, findings: &[ScanFinding]) -> ScanDelta {
        self.generation += 1;
        let generation = self.generation;
        let is_baseline = !self.images.contains_key(image);
        let rec = self.images.entry(image.to_owned()).or_default();

        let mut delta = ScanDelta { is_baseline, ..ScanDelta::default() };
        let mut present: BTreeMap<&str, ()> = BTreeMap::new();
        for f in findings {
            present.insert(&f.fingerprint, ());
            match rec.findings.get_mut(&f.fingerprint) {
                Some(old) => {
                    // A fingerprint counts as re-opened when it becomes
                    // vulnerable after having been resolved *or* after
                    // having been seen only sanitized — both are the
                    // `diff` regression cases.
                    let was_gone = old.status == FindingStatus::Resolved;
                    if f.vulnerable && (was_gone || !old.vulnerable) {
                        delta.reopened.push(f.fingerprint.clone());
                    }
                    old.status = FindingStatus::Open;
                    old.vulnerable = f.vulnerable;
                    old.last_seen = generation;
                }
                None => {
                    rec.findings.insert(
                        f.fingerprint.clone(),
                        StoredFinding {
                            vulnerable: f.vulnerable,
                            status: FindingStatus::Open,
                            first_seen: generation,
                            last_seen: generation,
                            sink: f.sink.clone(),
                            sink_fn: f.sink_fn.clone(),
                        },
                    );
                    if f.vulnerable {
                        delta.new_vulnerable += 1;
                    }
                    delta.new.push(f.fingerprint.clone());
                }
            }
        }
        for (fp, stored) in &mut rec.findings {
            if stored.status == FindingStatus::Open && !present.contains_key(fp.as_str()) {
                stored.status = FindingStatus::Resolved;
                delta.resolved.push(fp.clone());
            }
        }
        delta
    }

    /// Open **vulnerable** findings across the whole corpus.
    #[must_use]
    pub fn open_vulnerable(&self) -> usize {
        self.images
            .values()
            .flat_map(|r| r.findings.values())
            .filter(|f| f.status == FindingStatus::Open && f.vulnerable)
            .count()
    }
}

/// The on-disk layout of a corpus store.
#[derive(Debug, Clone)]
pub struct StoreDir {
    root: PathBuf,
    fs: Arc<FaultFs>,
}

impl StoreDir {
    /// Opens (creating if necessary) a store rooted at `root`, writing
    /// through a pass-through filesystem shim.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: &Path) -> io::Result<StoreDir> {
        Self::open_with_fs(root, Arc::new(FaultFs::new()))
    }

    /// Opens a store whose writes route through `fs` — the hook the
    /// crash drills use to inject faults or simulate a mid-run kill.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open_with_fs(root: &Path, fs: Arc<FaultFs>) -> io::Result<StoreDir> {
        std::fs::create_dir_all(root)?;
        let s = StoreDir { root: root.to_path_buf(), fs };
        std::fs::create_dir_all(s.reports_dir())?;
        Ok(s)
    }

    /// The filesystem shim every store write goes through.
    #[must_use]
    pub fn fs(&self) -> &Arc<FaultFs> {
        &self.fs
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the findings database.
    #[must_use]
    pub fn findings_path(&self) -> PathBuf {
        self.root.join("findings.json")
    }

    /// Path of the persisted summary cache.
    #[must_use]
    pub fn cache_path(&self) -> PathBuf {
        self.root.join("summaries.dtc")
    }

    /// Directory of per-image reports.
    #[must_use]
    pub fn reports_dir(&self) -> PathBuf {
        self.root.join("reports")
    }

    /// Path of the append-only run journal.
    #[must_use]
    pub fn journal_path(&self) -> PathBuf {
        self.root.join("journal.jsonl")
    }

    /// Path of the pid-stamped lock file.
    #[must_use]
    pub fn lock_path(&self) -> PathBuf {
        self.root.join("lock")
    }

    /// Path of the live-batch heartbeat file (advisory; rewritten
    /// atomically while a batch runs).
    #[must_use]
    pub fn status_path(&self) -> PathBuf {
        self.root.join("status.json")
    }

    /// Path of the append-only run history.
    #[must_use]
    pub fn runs_path(&self) -> PathBuf {
        self.root.join("runs.jsonl")
    }

    /// The pid of the batch currently holding this store's lock, if that
    /// process is still alive. `None` means no lock, an unreadable lock,
    /// or a dead owner (a crashed batch leaves its corpse-lock behind).
    #[must_use]
    pub fn live_run_pid(&self) -> Option<u32> {
        let pid: u32 = std::fs::read_to_string(self.lock_path()).ok()?.trim().parse().ok()?;
        lock::pid_alive(pid).then_some(pid)
    }

    /// Acquires the store lock for this process.
    ///
    /// # Errors
    ///
    /// [`LockError::Held`] when another live process owns the store.
    pub fn lock(&self) -> Result<(StoreLock, Option<u32>), LockError> {
        StoreLock::acquire(&self.lock_path())
    }

    /// Loads the findings database; a missing file is an empty database
    /// (the store is advisory, never a scan blocker). An *unparseable*
    /// file is quarantined — see [`StoreDir::load_db_checked`].
    #[must_use]
    pub fn load_db(&self) -> FindingsDb {
        self.load_db_checked().0
    }

    /// Loads the findings database, distinguishing missing (empty db,
    /// fine) from corrupt (quarantined). A corrupt `findings.json` is
    /// renamed to a `findings.json.corrupt-<hash8>` sidecar — whose path
    /// is returned so the caller can warn loudly — and an empty database
    /// is returned. The sidecar rename means the next run starts from a
    /// clean baseline instead of tripping over the same bytes again,
    /// and the evidence survives for post-mortem.
    #[must_use]
    pub fn load_db_checked(&self) -> (FindingsDb, Option<PathBuf>) {
        let path = self.findings_path();
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(_) => return (FindingsDb::default(), None),
        };
        match serde_json::from_slice::<FindingsDb>(&bytes) {
            Ok(db) => (db, None),
            Err(_) => {
                let sidecar = path
                    .with_file_name(format!("findings.json.corrupt-{:08x}", fnv64(&bytes) as u32));
                // Rename, don't copy: the corrupt bytes must not stay
                // under the canonical name where the next load would
                // quarantine them all over again.
                let kept = std::fs::rename(&path, &sidecar).is_ok();
                (FindingsDb::default(), kept.then_some(sidecar))
            }
        }
    }

    /// Saves the findings database atomically (temp + fsync + rename).
    ///
    /// # Errors
    ///
    /// Propagates serialization and write failures.
    pub fn save_db(&self, db: &FindingsDb) -> io::Result<()> {
        let json = serde_json::to_string_pretty(db).map_err(|e| io::Error::other(e.to_string()))?;
        atomic_write(&self.fs, &self.findings_path(), json.as_bytes())
    }

    /// Durably appends one completed image to the run journal.
    ///
    /// # Errors
    ///
    /// Propagates serialization and append failures.
    pub fn append_journal(&self, entry: &JournalEntry) -> io::Result<()> {
        let line = journal::encode_entry(entry).map_err(|e| io::Error::other(e.to_string()))?;
        append_durable(&self.fs, &self.journal_path(), &line)
    }

    /// Loads the run journal; a missing journal is an empty one.
    #[must_use]
    pub fn load_journal(&self) -> JournalLoad {
        match std::fs::read(self.journal_path()) {
            Ok(bytes) => journal::parse_journal(&bytes),
            Err(_) => JournalLoad::default(),
        }
    }

    /// Deletes the run journal (a completed run owes nothing to resume).
    pub fn clear_journal(&self) {
        let _ = std::fs::remove_file(self.journal_path());
    }

    /// Durably appends one completed run to `runs.jsonl`.
    ///
    /// # Errors
    ///
    /// Propagates serialization and append failures.
    pub fn append_run(&self, run: &RunSummary) -> io::Result<()> {
        let line = runs::encode_run(run).map_err(|e| io::Error::other(e.to_string()))?;
        append_durable(&self.fs, &self.runs_path(), &line)
    }

    /// Loads the run history; a missing file is an empty history.
    #[must_use]
    pub fn load_runs(&self) -> RunsLoad {
        match std::fs::read(self.runs_path()) {
            Ok(bytes) => runs::parse_runs(&bytes),
            Err(_) => RunsLoad::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(fp: &str, vulnerable: bool) -> ScanFinding {
        ScanFinding {
            fingerprint: fp.to_owned(),
            vulnerable,
            sink: "memcpy".into(),
            sink_fn: "parse".into(),
        }
    }

    #[test]
    fn baseline_never_regresses() {
        let mut db = FindingsDb::default();
        let d = db.record_scan("img", &[f("aa", true), f("bb", false)]);
        assert!(d.is_baseline);
        assert_eq!(d.new.len(), 2);
        assert_eq!(d.new_vulnerable, 1);
        assert!(!d.is_regression());
        assert_eq!(db.open_vulnerable(), 1);
    }

    #[test]
    fn repeat_scan_is_quiet_and_new_vulnerable_regresses() {
        let mut db = FindingsDb::default();
        db.record_scan("img", &[f("aa", true)]);
        let d = db.record_scan("img", &[f("aa", true)]);
        assert!(!d.is_baseline);
        assert!(d.new.is_empty() && d.reopened.is_empty() && d.resolved.is_empty());
        assert!(!d.is_regression());
        let d = db.record_scan("img", &[f("aa", true), f("cc", true)]);
        assert_eq!(d.new, vec!["cc".to_owned()]);
        assert!(d.is_regression());
    }

    #[test]
    fn resolve_then_reopen_regresses() {
        let mut db = FindingsDb::default();
        db.record_scan("img", &[f("aa", true)]);
        let d = db.record_scan("img", &[]);
        assert_eq!(d.resolved, vec!["aa".to_owned()]);
        assert!(!d.is_regression(), "a fix is not a regression");
        assert_eq!(db.open_vulnerable(), 0);
        let d = db.record_scan("img", &[f("aa", true)]);
        assert_eq!(d.reopened, vec!["aa".to_owned()]);
        assert!(d.is_regression());
    }

    #[test]
    fn sanitized_to_vulnerable_is_a_reopen() {
        let mut db = FindingsDb::default();
        db.record_scan("img", &[f("aa", false)]);
        let d = db.record_scan("img", &[f("aa", true)]);
        assert_eq!(d.reopened, vec!["aa".to_owned()]);
        assert!(d.is_regression());
    }

    #[test]
    fn images_are_independent() {
        let mut db = FindingsDb::default();
        db.record_scan("one", &[f("aa", true)]);
        let d = db.record_scan("two", &[f("aa", true)]);
        assert!(d.is_baseline, "same fingerprint in another image is that image's baseline");
    }

    #[test]
    fn db_round_trips_through_the_store_dir() {
        let root = std::env::temp_dir().join(format!("dtaint-store-{}", std::process::id()));
        let store = StoreDir::open(&root).unwrap();
        let mut db = FindingsDb::default();
        db.record_scan("img", &[f("aa", true)]);
        store.save_db(&db).unwrap();
        assert_eq!(store.load_db(), db);
        assert!(store.reports_dir().is_dir());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn missing_db_loads_empty() {
        let root = std::env::temp_dir().join(format!("dtaint-store-miss-{}", std::process::id()));
        let store = StoreDir::open(&root).unwrap();
        let (db, sidecar) = store.load_db_checked();
        assert_eq!(db, FindingsDb::default());
        assert!(sidecar.is_none(), "missing is not corrupt");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn corrupt_db_is_quarantined_not_silently_emptied() {
        let root =
            std::env::temp_dir().join(format!("dtaint-store-corrupt-{}", std::process::id()));
        let store = StoreDir::open(&root).unwrap();
        std::fs::write(store.findings_path(), b"{\"generation\": 3, \"images\": {trunc").unwrap();
        let (db, sidecar) = store.load_db_checked();
        assert_eq!(db, FindingsDb::default());
        let sidecar = sidecar.expect("corrupt db yields a sidecar");
        assert!(sidecar.exists(), "evidence survives");
        assert!(!store.findings_path().exists(), "canonical name is cleared");
        assert!(sidecar
            .file_name()
            .unwrap()
            .to_string_lossy()
            .starts_with("findings.json.corrupt-"));
        // The next load is clean — no repeat quarantine.
        let (_, again) = store.load_db_checked();
        assert!(again.is_none());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn journal_appends_load_and_clear() {
        let root =
            std::env::temp_dir().join(format!("dtaint-store-journal-{}", std::process::id()));
        let store = StoreDir::open(&root).unwrap();
        assert_eq!(store.load_journal(), JournalLoad::default());
        let entry = JournalEntry {
            v: JOURNAL_VERSION,
            image: "router".into(),
            content: "00000000deadbeef".into(),
            config: "alias:sse".into(),
            report: Some("router.json".into()),
            outcome: JournalOutcome::Ok,
            error: None,
            binaries: 2,
            findings: vec![f("aa", true)],
            sym_hits: 1,
            sym_misses: 2,
            ddg_hits: 3,
            ddg_misses: 4,
            invalidations: 0,
            metrics: dtaint_telemetry::MetricsRegistry::default(),
        };
        store.append_journal(&entry).unwrap();
        store.append_journal(&entry).unwrap();
        let load = store.load_journal();
        assert_eq!(load.entries.len(), 2);
        assert_eq!(load.entries[0], entry);
        assert_eq!(load.discarded_lines, 0);
        store.clear_journal();
        assert_eq!(store.load_journal(), JournalLoad::default());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn save_db_leaves_no_temp_droppings() {
        let root = std::env::temp_dir().join(format!("dtaint-store-tmp-{}", std::process::id()));
        let store = StoreDir::open(&root).unwrap();
        let mut db = FindingsDb::default();
        db.record_scan("img", &[f("aa", true)]);
        store.save_db(&db).unwrap();
        let stray: Vec<_> = std::fs::read_dir(&root)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp-"))
            .collect();
        assert!(stray.is_empty(), "no temp files survive a clean save: {stray:?}");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn run_history_appends_and_loads() {
        let root = std::env::temp_dir().join(format!("dtaint-store-runs-{}", std::process::id()));
        let store = StoreDir::open(&root).unwrap();
        assert_eq!(store.load_runs(), RunsLoad::default());
        let run = RunSummary {
            v: RUN_VERSION,
            config: "alias=sse;cache=on".into(),
            images: 2,
            ok: 2,
            ..RunSummary::default()
        };
        store.append_run(&run).unwrap();
        store.append_run(&run).unwrap();
        let load = store.load_runs();
        assert_eq!(load.runs.len(), 2);
        assert_eq!(load.runs[0], run);
        assert_eq!(load.discarded_lines, 0);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn live_run_pid_sees_live_owner_only() {
        let root = std::env::temp_dir().join(format!("dtaint-store-live-{}", std::process::id()));
        let store = StoreDir::open(&root).unwrap();
        assert_eq!(store.live_run_pid(), None, "no lock file");
        std::fs::write(store.lock_path(), format!("{}", std::process::id())).unwrap();
        assert_eq!(store.live_run_pid(), Some(std::process::id()));
        std::fs::write(store.lock_path(), "3999999999").unwrap();
        assert_eq!(store.live_run_pid(), None, "dead owner is not live");
        std::fs::write(store.lock_path(), "not-a-pid").unwrap();
        assert_eq!(store.live_run_pid(), None, "garbage lock is not live");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn store_lock_round_trips() {
        let root = std::env::temp_dir().join(format!("dtaint-store-lock-{}", std::process::id()));
        let store = StoreDir::open(&root).unwrap();
        let (guard, stole) = store.lock().unwrap();
        assert!(stole.is_none());
        assert!(store.lock_path().exists());
        drop(guard);
        assert!(!store.lock_path().exists());
        std::fs::remove_dir_all(&root).ok();
    }
}
