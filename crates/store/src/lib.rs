//! Persistent corpus store for `dtaint batch`.
//!
//! A [`StoreDir`] is a directory holding everything a corpus scan wants
//! to keep between runs:
//!
//! * `findings.json` — the [`FindingsDb`]: per image, every finding
//!   ever seen, keyed by its content-addressed fingerprint, with a
//!   lifecycle status (`Open`/`Resolved`) and first/last-seen
//!   generation numbers,
//! * `summaries.dtc` — the incremental summary cache (written by the
//!   caller via `SummaryCache::save`; this crate only names the path),
//! * `reports/` — one `scan --json` report per image per run.
//!
//! [`FindingsDb::record_scan`] folds one image's scan results into the
//! database and returns a [`ScanDelta`] in `dtaint diff` terms: new,
//! re-opened, and resolved fingerprints. The first scan of an image is
//! its *baseline* and can never regress; afterwards a new vulnerable
//! finding or a re-opened one makes [`ScanDelta::is_regression`] true,
//! which `dtaint batch` turns into exit code 2.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Lifecycle of a stored finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FindingStatus {
    /// Present in the image's latest scan.
    Open,
    /// Present in some earlier scan, absent from the latest.
    Resolved,
}

/// One finding's history within one image.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoredFinding {
    /// Whether the latest sighting was vulnerable (vs sanitized).
    pub vulnerable: bool,
    /// Present in the latest scan, or resolved earlier.
    pub status: FindingStatus,
    /// Generation of the scan that first reported this fingerprint.
    pub first_seen: u64,
    /// Generation of the most recent scan that reported it.
    pub last_seen: u64,
    /// Sink name (`memcpy`, `system`, …).
    pub sink: String,
    /// Function containing the sink.
    pub sink_fn: String,
}

/// Every finding ever recorded for one image, keyed by fingerprint.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImageRecord {
    /// Fingerprint → finding history.
    pub findings: BTreeMap<String, StoredFinding>,
}

/// The whole corpus database.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FindingsDb {
    /// Monotone scan counter; each `record_scan` call is one generation.
    pub generation: u64,
    /// Image name → record. An image scanned with zero findings still
    /// has an (empty) record, so its next scan is not a baseline.
    pub images: BTreeMap<String, ImageRecord>,
}

/// One finding as fed into [`FindingsDb::record_scan`] — the projection
/// of a report finding that the store tracks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanFinding {
    /// Content-addressed fingerprint (16 hex digits).
    pub fingerprint: String,
    /// Unsanitized flow?
    pub vulnerable: bool,
    /// Sink name.
    pub sink: String,
    /// Function containing the sink.
    pub sink_fn: String,
}

/// What changed for one image in one scan, relative to the store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanDelta {
    /// First scan of this image — everything is new by definition.
    pub is_baseline: bool,
    /// Fingerprints never seen before in this image.
    pub new: Vec<String>,
    /// Fingerprints that were resolved (or sanitized) and came back
    /// vulnerable.
    pub reopened: Vec<String>,
    /// Previously open fingerprints absent from this scan.
    pub resolved: Vec<String>,
    /// New **vulnerable** fingerprints (subset of `new`).
    pub new_vulnerable: usize,
}

impl ScanDelta {
    /// A regression is a new vulnerable finding or a re-opened one in a
    /// non-baseline scan; baselines establish the ledger, they never
    /// regress.
    #[must_use]
    pub fn is_regression(&self) -> bool {
        !self.is_baseline && (self.new_vulnerable > 0 || !self.reopened.is_empty())
    }
}

impl FindingsDb {
    /// Folds one image's scan into the database.
    pub fn record_scan(&mut self, image: &str, findings: &[ScanFinding]) -> ScanDelta {
        self.generation += 1;
        let generation = self.generation;
        let is_baseline = !self.images.contains_key(image);
        let rec = self.images.entry(image.to_owned()).or_default();

        let mut delta = ScanDelta { is_baseline, ..ScanDelta::default() };
        let mut present: BTreeMap<&str, ()> = BTreeMap::new();
        for f in findings {
            present.insert(&f.fingerprint, ());
            match rec.findings.get_mut(&f.fingerprint) {
                Some(old) => {
                    // A fingerprint counts as re-opened when it becomes
                    // vulnerable after having been resolved *or* after
                    // having been seen only sanitized — both are the
                    // `diff` regression cases.
                    let was_gone = old.status == FindingStatus::Resolved;
                    if f.vulnerable && (was_gone || !old.vulnerable) {
                        delta.reopened.push(f.fingerprint.clone());
                    }
                    old.status = FindingStatus::Open;
                    old.vulnerable = f.vulnerable;
                    old.last_seen = generation;
                }
                None => {
                    rec.findings.insert(
                        f.fingerprint.clone(),
                        StoredFinding {
                            vulnerable: f.vulnerable,
                            status: FindingStatus::Open,
                            first_seen: generation,
                            last_seen: generation,
                            sink: f.sink.clone(),
                            sink_fn: f.sink_fn.clone(),
                        },
                    );
                    if f.vulnerable {
                        delta.new_vulnerable += 1;
                    }
                    delta.new.push(f.fingerprint.clone());
                }
            }
        }
        for (fp, stored) in &mut rec.findings {
            if stored.status == FindingStatus::Open && !present.contains_key(fp.as_str()) {
                stored.status = FindingStatus::Resolved;
                delta.resolved.push(fp.clone());
            }
        }
        delta
    }

    /// Open **vulnerable** findings across the whole corpus.
    #[must_use]
    pub fn open_vulnerable(&self) -> usize {
        self.images
            .values()
            .flat_map(|r| r.findings.values())
            .filter(|f| f.status == FindingStatus::Open && f.vulnerable)
            .count()
    }
}

/// The on-disk layout of a corpus store.
#[derive(Debug, Clone)]
pub struct StoreDir {
    root: PathBuf,
}

impl StoreDir {
    /// Opens (creating if necessary) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: &Path) -> io::Result<StoreDir> {
        std::fs::create_dir_all(root)?;
        let s = StoreDir { root: root.to_path_buf() };
        std::fs::create_dir_all(s.reports_dir())?;
        Ok(s)
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the findings database.
    #[must_use]
    pub fn findings_path(&self) -> PathBuf {
        self.root.join("findings.json")
    }

    /// Path of the persisted summary cache.
    #[must_use]
    pub fn cache_path(&self) -> PathBuf {
        self.root.join("summaries.dtc")
    }

    /// Directory of per-image reports.
    #[must_use]
    pub fn reports_dir(&self) -> PathBuf {
        self.root.join("reports")
    }

    /// Loads the findings database; a missing or unparseable file is an
    /// empty database (the store is advisory, never a scan blocker).
    #[must_use]
    pub fn load_db(&self) -> FindingsDb {
        std::fs::read_to_string(self.findings_path())
            .ok()
            .and_then(|s| serde_json::from_str(&s).ok())
            .unwrap_or_default()
    }

    /// Saves the findings database.
    ///
    /// # Errors
    ///
    /// Propagates serialization and write failures.
    pub fn save_db(&self, db: &FindingsDb) -> io::Result<()> {
        let json = serde_json::to_string_pretty(db).map_err(|e| io::Error::other(e.to_string()))?;
        std::fs::write(self.findings_path(), json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(fp: &str, vulnerable: bool) -> ScanFinding {
        ScanFinding {
            fingerprint: fp.to_owned(),
            vulnerable,
            sink: "memcpy".into(),
            sink_fn: "parse".into(),
        }
    }

    #[test]
    fn baseline_never_regresses() {
        let mut db = FindingsDb::default();
        let d = db.record_scan("img", &[f("aa", true), f("bb", false)]);
        assert!(d.is_baseline);
        assert_eq!(d.new.len(), 2);
        assert_eq!(d.new_vulnerable, 1);
        assert!(!d.is_regression());
        assert_eq!(db.open_vulnerable(), 1);
    }

    #[test]
    fn repeat_scan_is_quiet_and_new_vulnerable_regresses() {
        let mut db = FindingsDb::default();
        db.record_scan("img", &[f("aa", true)]);
        let d = db.record_scan("img", &[f("aa", true)]);
        assert!(!d.is_baseline);
        assert!(d.new.is_empty() && d.reopened.is_empty() && d.resolved.is_empty());
        assert!(!d.is_regression());
        let d = db.record_scan("img", &[f("aa", true), f("cc", true)]);
        assert_eq!(d.new, vec!["cc".to_owned()]);
        assert!(d.is_regression());
    }

    #[test]
    fn resolve_then_reopen_regresses() {
        let mut db = FindingsDb::default();
        db.record_scan("img", &[f("aa", true)]);
        let d = db.record_scan("img", &[]);
        assert_eq!(d.resolved, vec!["aa".to_owned()]);
        assert!(!d.is_regression(), "a fix is not a regression");
        assert_eq!(db.open_vulnerable(), 0);
        let d = db.record_scan("img", &[f("aa", true)]);
        assert_eq!(d.reopened, vec!["aa".to_owned()]);
        assert!(d.is_regression());
    }

    #[test]
    fn sanitized_to_vulnerable_is_a_reopen() {
        let mut db = FindingsDb::default();
        db.record_scan("img", &[f("aa", false)]);
        let d = db.record_scan("img", &[f("aa", true)]);
        assert_eq!(d.reopened, vec!["aa".to_owned()]);
        assert!(d.is_regression());
    }

    #[test]
    fn images_are_independent() {
        let mut db = FindingsDb::default();
        db.record_scan("one", &[f("aa", true)]);
        let d = db.record_scan("two", &[f("aa", true)]);
        assert!(d.is_baseline, "same fingerprint in another image is that image's baseline");
    }

    #[test]
    fn db_round_trips_through_the_store_dir() {
        let root = std::env::temp_dir().join(format!("dtaint-store-{}", std::process::id()));
        let store = StoreDir::open(&root).unwrap();
        let mut db = FindingsDb::default();
        db.record_scan("img", &[f("aa", true)]);
        store.save_db(&db).unwrap();
        assert_eq!(store.load_db(), db);
        assert!(store.reports_dir().is_dir());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn missing_db_loads_empty() {
        let root = std::env::temp_dir().join(format!("dtaint-store-miss-{}", std::process::id()));
        let store = StoreDir::open(&root).unwrap();
        assert_eq!(store.load_db(), FindingsDb::default());
        std::fs::remove_dir_all(&root).ok();
    }
}
