//! Root crate: re-exports for examples/tests.
pub use dtaint_core as core;
