//! The strict-bounds extension: a length check that does not fit the
//! destination buffer is not sanitisation. Verified three ways — the
//! default (paper-faithful) detector misses it, the strict detector
//! flags it, and the emulator proves it exploitable.

use dtaint_core::{Dtaint, DtaintConfig};
use dtaint_emu::{validate, AttackConfig, Verdict};
use dtaint_fwbin::Arch;
use dtaint_fwgen::compile;
use dtaint_fwgen::spec::{Callee, FnSpec, ProgramSpec, Stmt};
use dtaint_fwgen::templates::{plant, PlantKind, PlantSpec};

fn build(sanitized: bool, arch: Arch) -> dtaint_fwbin::Binary {
    let mut spec = ProgramSpec::new("wb");
    let gt = plant(&mut spec, &PlantSpec::new(PlantKind::BofWeakBound, "w", sanitized, 0));
    let mut main = FnSpec::new("main", 0);
    main.push(Stmt::Call { callee: Callee::Func(gt.entry_fn), args: vec![], ret: None });
    main.push(Stmt::Return(None));
    spec.func(main);
    compile(&spec, arch).unwrap()
}

#[test]
fn paper_faithful_mode_trusts_the_weak_bound() {
    let bin = build(false, Arch::Arm32e);
    let r = Dtaint::new().analyze(&bin, "wb").unwrap();
    assert_eq!(
        r.vulnerabilities(),
        0,
        "the syntactic check accepts any bounding constraint — a documented gap"
    );
    assert!(r.findings.iter().any(|f| f.sanitized()), "the flow is seen, judged sanitized");
}

#[test]
fn strict_mode_flags_the_weak_bound_on_both_arches() {
    for arch in [Arch::Arm32e, Arch::Mips32e] {
        let bin = build(false, arch);
        let config = DtaintConfig { strict_bounds: true, ..Default::default() };
        let r = Dtaint::with_config(config).analyze(&bin, "wb").unwrap();
        assert_eq!(r.vulnerabilities(), 1, "{arch}: weak bound must be flagged");
    }
}

#[test]
fn strict_mode_accepts_a_fitting_bound() {
    for arch in [Arch::Arm32e, Arch::Mips32e] {
        let bin = build(true, arch);
        let config = DtaintConfig { strict_bounds: true, ..Default::default() };
        let r = Dtaint::with_config(config).analyze(&bin, "wb").unwrap();
        assert_eq!(r.vulnerabilities(), 0, "{arch}: fitting bound stays sanitized");
    }
}

#[test]
fn the_weak_bound_really_is_exploitable() {
    let bin = build(false, Arch::Arm32e);
    // The attacker picks a length that passes the weak check (< 1024)
    // but overflows the 256-byte destination.
    let config = AttackConfig { overflow_len: 1000, input_frames: 2, ..Default::default() };
    let verdict = validate(&bin, "main", &config);
    assert!(
        matches!(verdict, Verdict::MemoryCorruption(_)),
        "1023 bytes through a 256-byte buffer must crash: {verdict:?}"
    );
    // And the fitting bound survives the same attack.
    let bin = build(true, Arch::Arm32e);
    let verdict = validate(&bin, "main", &config);
    assert_eq!(verdict, Verdict::NoEffect);
}
