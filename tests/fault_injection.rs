//! Fault-injection corpus: the scanner must never panic on corrupted
//! inputs, must always terminate with a report (or a typed error for
//! unparseable containers), must enumerate every skipped function with
//! a reason, and must keep the findings of still-analyzed functions
//! bit-identical across thread counts and stable against the pristine
//! run.

use dtaint_core::{Dtaint, DtaintConfig, Finding, FunctionOutcome};
use dtaint_fwbin::Binary;
use dtaint_fwgen::{
    build_firmware, corrupt_binary, fbf_fault_corpus, fwi_fault_corpus, table2_profiles, BinFault,
};
use dtaint_fwimage::{extract_binaries, extract_image};
use dtaint_symex::SymexConfig;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn small_firmware() -> dtaint_fwgen::GeneratedFirmware {
    let mut p = table2_profiles().remove(0);
    p.total_functions = 40;
    build_firmware(&p)
}

fn config_threads(threads: usize) -> DtaintConfig {
    DtaintConfig { threads, ..Default::default() }
}

/// The fields of a finding that are stable across pool layouts — the
/// rendered `tainted_expr`/evidence strings may embed pool-global
/// unknown indices, which legitimately shift when an *earlier* function
/// is skipped, so pristine-vs-mutant comparisons key on these.
fn stable_key(f: &Finding) -> (String, u32, String, String, Vec<String>, Vec<u32>, bool) {
    (
        f.sink.clone(),
        f.sink_ins,
        f.sink_fn.clone(),
        f.observed_in.clone(),
        f.sources.iter().map(|s| s.name.clone()).collect(),
        f.call_chain.clone(),
        f.sanitized(),
    )
}

/// True when the finding touches the function named `name` (covering
/// `addr..addr+size`) as sink holder, observer, or via a call-chain
/// instruction inside it.
fn mentions(f: &Finding, name: &str, addr: u32, size: u32) -> bool {
    f.sink_fn == name
        || f.observed_in == name
        || f.call_chain.iter().any(|&cs| cs >= addr && cs < addr.saturating_add(size))
}

#[test]
fn corrupt_fbf_bytes_error_cleanly_never_panic() {
    let fw = small_firmware();
    for (name, mutant) in fbf_fault_corpus(&fw.binary, 11) {
        let parsed = catch_unwind(AssertUnwindSafe(|| Binary::from_bytes(&mutant)));
        assert!(parsed.is_ok(), "parser panicked on mutant `{name}`");
    }
}

#[test]
fn corrupt_fwi_bytes_error_cleanly_never_panic() {
    let fw = small_firmware();
    for (name, mutant) in fwi_fault_corpus(&fw.image, 13) {
        let parsed = catch_unwind(AssertUnwindSafe(|| extract_image(&mutant)));
        assert!(parsed.is_ok(), "image extractor panicked on mutant `{name}`");
    }
}

/// The acceptance gate: for every corpus mutant the scanner terminates
/// without panicking; parseable mutants always produce a report whose
/// skipped functions carry reasons.
#[test]
fn scanner_survives_the_whole_corpus() {
    let fw = small_firmware();
    let analyzer = Dtaint::new();
    for (name, mutant) in fwi_fault_corpus(&fw.image, 17) {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let img = extract_image(&mutant).map_err(|e| e.to_string())?;
            let bins = extract_binaries(&img).map_err(|e| e.to_string())?;
            let mut reports = Vec::new();
            for (bname, bin) in &bins {
                reports.push(analyzer.analyze(bin, bname).map_err(|e| e.to_string())?);
            }
            Ok::<_, String>(reports)
        }));
        let result = outcome.unwrap_or_else(|_| panic!("scanner panicked on mutant `{name}`"));
        let Ok(reports) = result else { continue }; // typed error: fine
        for report in reports {
            // `functions_skipped` counts exactly the records with a
            // no-summary outcome; degraded/budget records are listed
            // but still analyzed.
            let severe = report
                .skipped_functions
                .iter()
                .filter(|r| {
                    matches!(r.outcome, FunctionOutcome::LiftFailed | FunctionOutcome::Panicked)
                })
                .count();
            assert_eq!(severe, report.functions_skipped, "mutant `{name}`");
            for rec in &report.skipped_functions {
                assert_ne!(rec.outcome, FunctionOutcome::Analyzed, "mutant `{name}`");
                assert!(!rec.detail.is_empty(), "mutant `{name}`: reason missing");
            }
            if !report.coverage_complete() {
                assert!(
                    !report.skip_table().is_empty(),
                    "mutant `{name}`: incomplete coverage but empty skip table"
                );
            }
        }
    }
}

/// Garbage-opcode mutants parse but damage one function; the scanner
/// must keep going, and its report must be bit-identical (full
/// fidelity, rendered strings included) across thread counts.
#[test]
fn mutant_reports_are_bit_identical_across_threads() {
    let fw = small_firmware();
    let mutant = corrupt_binary(&fw.binary, &BinFault::GarbageOpcodes { index: 1, seed: 23 });
    let mut snapshots = Vec::new();
    for threads in [1usize, 2, 8] {
        let report = Dtaint::with_config(config_threads(threads))
            .analyze(&mutant, "mutant")
            .expect("keep-going scan yields a report");
        snapshots.push((
            threads,
            format!("{:?}", report.findings),
            format!("{:?}", report.skipped_functions),
            report.functions_analyzed,
            report.functions_skipped,
        ));
    }
    for pair in snapshots.windows(2) {
        assert_eq!(pair[0].1, pair[1].1, "findings differ: t={} vs t={}", pair[0].0, pair[1].0);
        assert_eq!(pair[0].2, pair[1].2, "skip set differs: t={} vs t={}", pair[0].0, pair[1].0);
        assert_eq!((pair[0].3, pair[0].4), (pair[1].3, pair[1].4));
    }
}

/// Findings of functions untouched by the mutation are preserved from
/// the pristine run (on pool-layout-stable fields).
#[test]
fn analyzed_function_findings_match_pristine() {
    let fw = small_firmware();
    let pristine = Dtaint::new().analyze(&fw.binary, "pristine").unwrap();
    for index in [0usize, 2] {
        let fault = BinFault::GarbageOpcodes { index, seed: 31 };
        let mutant_bin = corrupt_binary(&fw.binary, &fault);
        let report = Dtaint::new().analyze(&mutant_bin, "mutant").unwrap();
        // Every function downgraded by the mutation defines the
        // "affected" set; findings not touching it must survive intact.
        let affected: Vec<_> = report
            .skipped_functions
            .iter()
            .filter_map(|r| fw.binary.function(&r.name).map(|s| (r.name.clone(), s.addr, s.size)))
            .collect();
        let untouched = |f: &Finding| {
            !affected.iter().any(|(name, addr, size)| mentions(f, name, *addr, *size))
        };
        let mut kept: Vec<_> =
            report.findings.iter().filter(|f| untouched(f)).map(stable_key).collect();
        let mut expected: Vec<_> =
            pristine.findings.iter().filter(|f| untouched(f)).map(stable_key).collect();
        kept.sort();
        expected.sort();
        assert_eq!(kept, expected, "fault {fault:?} disturbed unaffected findings");
    }
}

/// The `panic_on` drill forces a real `panic!` inside symbolic
/// execution of one chosen function. The catch_unwind isolation must
/// produce the same skip set for 1, 2, and 8 threads, and — when the
/// drilled function feeds no finding — leave the findings exactly
/// pristine.
#[test]
fn panic_drill_skip_set_is_thread_invariant() {
    let fw = small_firmware();
    let pristine = Dtaint::new().analyze(&fw.binary, "pristine").unwrap();
    // Drill a function that no pristine finding touches.
    let victim = fw
        .binary
        .functions()
        .into_iter()
        .find(|s| !pristine.findings.iter().any(|f| mentions(f, &s.name, s.addr, s.size)))
        .expect("some function is uninvolved in findings")
        .clone();
    let mut snapshots = Vec::new();
    for threads in [1usize, 2, 8] {
        let config = DtaintConfig {
            threads,
            symex: SymexConfig { panic_on: Some(victim.addr), ..Default::default() },
            ..Default::default()
        };
        let report = Dtaint::with_config(config).analyze(&fw.binary, "drilled").unwrap();
        assert_eq!(report.functions_skipped, 1);
        assert_eq!(report.skipped_functions.len(), 1);
        let rec = &report.skipped_functions[0];
        assert_eq!(rec.outcome, FunctionOutcome::Panicked);
        assert_eq!(rec.addr, victim.addr);
        let mut keys: Vec<_> = report.findings.iter().map(stable_key).collect();
        keys.sort();
        snapshots.push((threads, keys, format!("{:?}", report.skipped_functions)));
    }
    for pair in snapshots.windows(2) {
        assert_eq!(pair[0].1, pair[1].1, "t={} vs t={}", pair[0].0, pair[1].0);
        assert_eq!(pair[0].2, pair[1].2, "t={} vs t={}", pair[0].0, pair[1].0);
    }
    let mut pristine_keys: Vec<_> = pristine.findings.iter().map(stable_key).collect();
    pristine_keys.sort();
    assert_eq!(snapshots[0].1, pristine_keys, "drilling an uninvolved function changed findings");
}

/// A starvation-level fuel budget triggers the degraded retry path:
/// the scan still completes, retries are counted, outcomes are
/// enumerated, and the report is deterministic across thread counts.
#[test]
fn tiny_fuel_budget_degrades_deterministically() {
    let fw = small_firmware();
    let mut snapshots = Vec::new();
    for threads in [1usize, 2, 8] {
        let config = DtaintConfig {
            threads,
            symex: SymexConfig { max_fuel: 2, ..Default::default() },
            ..Default::default()
        };
        let report = Dtaint::with_config(config).analyze(&fw.binary, "starved").unwrap();
        assert!(report.functions_retried > 0, "a 2-step budget must force retries");
        assert!(report.skipped_functions.iter().all(|r| matches!(
            r.outcome,
            FunctionOutcome::Degraded | FunctionOutcome::BudgetExceeded
        )));
        // Budget exhaustion is a downgrade, not a skip: coverage stays
        // complete because every function still contributes a summary.
        assert_eq!(report.functions_skipped, 0);
        snapshots.push(format!(
            "{:?}|{:?}|{}",
            report.findings, report.skipped_functions, report.functions_retried
        ));
    }
    assert_eq!(snapshots[0], snapshots[1]);
    assert_eq!(snapshots[1], snapshots[2]);
}

/// The incremental cache must never serve a faulted function: a
/// `Panicked` function is quarantined (re-missed on every scan, at both
/// cache levels) rather than stored as an `Analyzed` summary, and the
/// warm report stays byte-identical to the cold one.
#[test]
fn panicked_functions_are_never_cached() {
    use dtaint_core::{CacheRef, SummaryCache};
    use std::sync::Arc;
    let fw = small_firmware();
    let pristine = Dtaint::new().analyze(&fw.binary, "pristine").unwrap();
    let victim = fw
        .binary
        .functions()
        .into_iter()
        .find(|s| !pristine.findings.iter().any(|f| mentions(f, &s.name, s.addr, s.size)))
        .expect("some function is uninvolved in findings")
        .clone();
    let config = |cache: Option<CacheRef>| DtaintConfig {
        symex: SymexConfig { panic_on: Some(victim.addr), ..Default::default() },
        cache,
        ..Default::default()
    };
    let cold = Dtaint::with_config(config(None))
        .analyze(&fw.binary, "drilled")
        .unwrap()
        .with_zeroed_wall_clock();
    assert_eq!(cold.skipped_functions[0].outcome, FunctionOutcome::Panicked);

    let cache = Arc::new(SummaryCache::new());
    Dtaint::with_config(config(Some(CacheRef::new(cache.clone(), "drill"))))
        .analyze(&fw.binary, "drilled")
        .unwrap();
    let warm = Dtaint::with_config(config(Some(CacheRef::new(cache.clone(), "drill"))))
        .analyze(&fw.binary, "drilled")
        .unwrap()
        .with_zeroed_wall_clock();
    assert_eq!(warm, cold, "warm drilled scan must reproduce the cold report exactly");
    let st = cache.scan_stats("drill");
    assert!(st.sym_hits > 0, "healthy functions are served from the cache");
    assert_eq!(
        st.sym_miss_fns.iter().cloned().collect::<Vec<_>>(),
        vec![victim.name.clone()],
        "only the panicked function may re-miss at the symex level"
    );
    // The quarantine also covers the DDG level: the victim's
    // placeholder summary is re-derived (re-missed) on every scan,
    // never stored, and nothing else misses.
    assert_eq!(
        st.ddg_miss_fns.iter().cloned().collect::<Vec<_>>(),
        vec![victim.name.clone()],
        "only the panicked function may re-miss at the DDG level"
    );
}

/// Same quarantine for `Degraded`/`BudgetExceeded` outcomes: a
/// starvation-level fuel budget downgrades many functions, and none of
/// them may ever be served from (or stored into) the cache as an
/// `Analyzed` summary.
#[test]
fn degraded_functions_are_never_cached() {
    use dtaint_core::{CacheRef, SummaryCache};
    use std::sync::Arc;
    let fw = small_firmware();
    let config = |cache: Option<CacheRef>| DtaintConfig {
        symex: SymexConfig { max_fuel: 2, ..Default::default() },
        cache,
        ..Default::default()
    };
    let cold = Dtaint::with_config(config(None))
        .analyze(&fw.binary, "starved")
        .unwrap()
        .with_zeroed_wall_clock();
    assert!(!cold.skipped_functions.is_empty(), "a 2-step budget must degrade something");

    let cache = Arc::new(SummaryCache::new());
    Dtaint::with_config(config(Some(CacheRef::new(cache.clone(), "starve"))))
        .analyze(&fw.binary, "starved")
        .unwrap();
    let warm = Dtaint::with_config(config(Some(CacheRef::new(cache.clone(), "starve"))))
        .analyze(&fw.binary, "starved")
        .unwrap()
        .with_zeroed_wall_clock();
    assert_eq!(warm, cold, "warm starved scan must reproduce the cold report exactly");
    let st = cache.scan_stats("starve");
    for rec in &warm.skipped_functions {
        assert!(
            matches!(rec.outcome, FunctionOutcome::Degraded | FunctionOutcome::BudgetExceeded),
            "unexpected outcome for {}: {:?}",
            rec.name,
            rec.outcome
        );
        assert!(
            st.sym_miss_fns.contains(&rec.name),
            "{} ({:?}) was served from the symex cache",
            rec.name,
            rec.outcome
        );
        assert!(
            st.ddg_miss_fns.contains(&rec.name),
            "{} ({:?}) was served from the DDG cache",
            rec.name,
            rec.outcome
        );
    }
}

/// fail-fast mode restores the old abort-on-first-failure behaviour.
#[test]
fn fail_fast_aborts_where_keep_going_reports() {
    let fw = small_firmware();
    let victim = fw.binary.functions()[0].clone();
    let drill = SymexConfig { panic_on: Some(victim.addr), ..Default::default() };
    let keep = DtaintConfig { symex: drill, ..Default::default() };
    let report = Dtaint::with_config(keep.clone()).analyze(&fw.binary, "kept").unwrap();
    assert_eq!(report.functions_skipped, 1);
    let fast = DtaintConfig { fail_fast: true, ..keep };
    let err = Dtaint::with_config(fast).analyze(&fw.binary, "aborted");
    assert!(err.is_err(), "fail-fast must abort on the drilled panic");
}
