//! The parallel stages (per-function analysis and the bottom-up DDG
//! propagation, both merged by pool translation) must be
//! observationally identical to the sequential path: same findings,
//! same counts, same rendered expressions — for every thread count, on
//! every Table II profile.

use dtaint_core::{AnalysisReport, Dtaint, DtaintConfig, Finding};
use dtaint_fwgen::{build_firmware, table2_profiles, GeneratedFirmware};
use proptest::prelude::*;

/// Builds one Table II profile with the function count capped, so the
/// debug-mode suite stays fast (the Uniview/Hikvision rows are 6.7k and
/// 14k functions at full size).
fn capped_firmware(index: usize, cap: usize) -> GeneratedFirmware {
    let mut p = table2_profiles().remove(index);
    p.total_functions = p.total_functions.min(cap);
    build_firmware(&p)
}

fn report(fw: &GeneratedFirmware, threads: usize) -> AnalysisReport {
    let config = DtaintConfig { threads, ..Default::default() };
    Dtaint::with_config(config).analyze(&fw.binary, "par").unwrap()
}

/// Order-insensitive finding keys, including the rendered tainted
/// expression (pool translation must be structure-preserving), the
/// fingerprint, and the full typed evidence chain down to the verdict.
fn finding_keys(r: &AnalysisReport) -> Vec<(u32, String, bool, String, Vec<u32>, String)> {
    let mut keys: Vec<_> = r
        .findings
        .iter()
        .map(|f: &Finding| {
            (
                f.sink_ins,
                f.sink.clone(),
                f.sanitized(),
                f.tainted_expr.clone(),
                f.call_chain.clone(),
                format!("{}{:?}{:?}{:?}", f.fingerprint, f.sources, f.verdict, f.evidence),
            )
        })
        .collect();
    keys.sort();
    keys
}

fn assert_reports_agree(seq: &AnalysisReport, par: &AnalysisReport, label: &str) {
    assert_eq!(seq.functions, par.functions, "{label}");
    assert_eq!(seq.sinks_count, par.sinks_count, "{label}");
    assert_eq!(seq.resolved_indirect, par.resolved_indirect, "{label}");
    assert_eq!(seq.vulnerabilities(), par.vulnerabilities(), "{label}");
    assert_eq!(finding_keys(seq), finding_keys(par), "{label}: findings must be identical");
}

fn reports_for_threads(threads: usize) -> AnalysisReport {
    let fw = capped_firmware(2, 160); // DGN1000: richest plant mix
    report(&fw, threads)
}

#[test]
fn parallel_and_sequential_analyses_agree() {
    let seq = reports_for_threads(1);
    let par = reports_for_threads(4);
    assert_reports_agree(&seq, &par, "DGN1000 @4t");
}

#[test]
fn ddg_stage_agrees_across_thread_counts_on_all_profiles() {
    for index in 0..6 {
        let fw = capped_firmware(index, 200);
        let seq = report(&fw, 1);
        for threads in [2, 4, 8] {
            let par = report(&fw, threads);
            assert_reports_agree(
                &seq,
                &par,
                &format!("profile {} threads={threads}", fw.profile.binary_name),
            );
        }
    }
}

/// The DDG stage in isolation: the whole dataflow result — final
/// summaries, sink observations rendered through the pool, resolved
/// indirect calls — must be bit-identical for every thread count, not
/// just the downstream findings.
#[test]
fn dataflow_stage_is_deterministic_across_thread_counts() {
    use dtaint_dataflow::{build_dataflow, DataflowConfig, ProgramDataflow};
    use dtaint_symex::{analyze_function, ExprPool, SymexConfig};

    fn fingerprint(df: &ProgramDataflow) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (addr, fin) in &df.finals {
            let _ = writeln!(out, "{addr:#x} defs={}", fin.summary.def_pairs.len());
            for s in &fin.sinks {
                let args: Vec<String> =
                    s.args.iter().map(|&a| df.pool.display(a).to_string()).collect();
                let _ = writeln!(
                    out,
                    "  {:?}@{:#x} chain={:?} args=[{}]",
                    s.kind,
                    s.sink_ins,
                    s.call_chain,
                    args.join(", ")
                );
            }
        }
        let _ = writeln!(out, "resolved={:?}", df.resolved_indirect);
        out
    }

    let fw = capped_firmware(2, 160);
    let cfgs = dtaint_cfg::build_all_cfgs(&fw.binary).unwrap();
    let cg = dtaint_cfg::CallGraph::build(&fw.binary, &cfgs);
    let mut pool = ExprPool::new();
    let summaries: Vec<_> = cfgs
        .iter()
        .map(|c| analyze_function(&fw.binary, c, &mut pool, &SymexConfig::default()))
        .collect();

    let mut base = None;
    for threads in [1, 2, 4, 8] {
        let config = DataflowConfig { threads, ..Default::default() };
        let df =
            build_dataflow(&fw.binary, &mut cg.clone(), summaries.clone(), pool.clone(), &config);
        let fp = fingerprint(&df);
        match &base {
            None => base = Some(fp),
            Some(b) => assert_eq!(&fp, b, "threads={threads} diverged from sequential DDG"),
        }
    }
}

/// Reports round-trip through JSON losslessly — full `PartialEq`,
/// including the typed evidence chains and the telemetry section — and
/// the provenance (fingerprints, verdicts, evidence) is bit-identical
/// across thread counts, on every Table II profile.
#[test]
fn report_json_round_trips_and_evidence_is_thread_invariant() {
    for index in 0..6 {
        let fw = capped_firmware(index, 120);
        let label = fw.profile.binary_name;
        let seq = report(&fw, 1);
        let par = report(&fw, 4);
        for r in [&seq, &par] {
            let back = AnalysisReport::from_json(&r.to_json().unwrap())
                .unwrap_or_else(|e| panic!("{label}: reparse failed: {e}"));
            assert_eq!(&back, r, "{label}: JSON round-trip must be lossless");
        }
        let provenance = |r: &AnalysisReport| {
            r.findings
                .iter()
                .map(|f| (f.fingerprint.clone(), f.verdict.clone(), f.evidence.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(provenance(&seq), provenance(&par), "{label}: evidence differs at 4 threads");
        for f in seq.findings.iter().filter(|f| !f.evidence.is_empty()) {
            assert!(
                matches!(f.evidence.last(), Some(dtaint_core::EvidenceStep::Verdict(_))),
                "{label}: evidence chain must end in a verdict"
            );
            assert!(!f.fingerprint.is_empty(), "{label}: fingerprint populated");
        }
    }
}

#[test]
fn thread_count_does_not_affect_repeated_runs() {
    for threads in [2, 3, 8] {
        let r1 = reports_for_threads(threads);
        let r2 = reports_for_threads(threads);
        assert_eq!(r1.vulnerabilities(), r2.vulnerabilities(), "threads={threads}");
        assert_eq!(r1.findings.len(), r2.findings.len(), "threads={threads}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random seeded generated programs: the parallel pipeline must
    /// produce the identical order-insensitive finding set as the
    /// sequential one, whatever the program shape.
    #[test]
    fn random_programs_agree_between_parallel_and_sequential(
        seed in 0u64..1_000_000,
        extra in 40usize..120,
        threads in 2usize..=8,
    ) {
        let mut p = table2_profiles().remove(2);
        p.seed = seed;
        p.total_functions = 40 + extra;
        let fw = build_firmware(&p);
        let seq = report(&fw, 1);
        let par = report(&fw, threads);
        prop_assert_eq!(seq.resolved_indirect, par.resolved_indirect);
        prop_assert_eq!(finding_keys(&seq), finding_keys(&par));
    }
}
