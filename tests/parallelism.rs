//! The parallel per-function analysis (private pools merged by
//! translation) must be observationally identical to the sequential
//! path: same findings, same counts, same rendered expressions.

use dtaint_core::{Dtaint, DtaintConfig};
use dtaint_fwgen::{build_firmware, table2_profiles};

fn reports_for_threads(threads: usize) -> dtaint_core::AnalysisReport {
    let mut p = table2_profiles().remove(2); // DGN1000: richest plant mix
    p.total_functions = 160;
    let fw = build_firmware(&p);
    let config = DtaintConfig { threads, ..Default::default() };
    Dtaint::with_config(config).analyze(&fw.binary, "par").unwrap()
}

#[test]
fn parallel_and_sequential_analyses_agree() {
    let seq = reports_for_threads(1);
    let par = reports_for_threads(4);
    assert_eq!(seq.vulnerabilities(), par.vulnerabilities());
    assert_eq!(seq.functions, par.functions);
    assert_eq!(seq.sinks_count, par.sinks_count);
    assert_eq!(seq.resolved_indirect, par.resolved_indirect);

    // Same finding set (order-insensitive, compare on stable keys).
    let key = |f: &dtaint_core::Finding| {
        (f.sink_ins, f.sink.clone(), f.sanitized, f.sources.clone(), f.call_chain.clone())
    };
    let mut a: Vec<_> = seq.findings.iter().map(key).collect();
    let mut b: Vec<_> = par.findings.iter().map(key).collect();
    a.sort();
    b.sort();
    assert_eq!(a, b, "parallel merge must not change findings");

    // Rendered tainted expressions agree too (pool translation is
    // structure-preserving).
    let mut ta: Vec<&String> = seq.findings.iter().map(|f| &f.tainted_expr).collect();
    let mut tb: Vec<&String> = par.findings.iter().map(|f| &f.tainted_expr).collect();
    ta.sort();
    tb.sort();
    assert_eq!(ta, tb);
}

#[test]
fn thread_count_does_not_affect_repeated_runs() {
    for threads in [2, 3, 8] {
        let r1 = reports_for_threads(threads);
        let r2 = reports_for_threads(threads);
        assert_eq!(r1.vulnerabilities(), r2.vulnerabilities(), "threads={threads}");
        assert_eq!(r1.findings.len(), r2.findings.len(), "threads={threads}");
    }
}
