//! Executable versions of the paper's worked examples: the Figure 5–7
//! `foo`/`woo` program, the Heartbleed listing of Figures 2–3, and the
//! §III-C pointer-alias formula.

use dtaint_core::{Dtaint, VulnKindRepr};
use dtaint_fwbin::arm::ArmIns;
use dtaint_fwbin::asm::Assembler;
use dtaint_fwbin::link::BinaryBuilder;
use dtaint_fwbin::{Arch, Reg};
use dtaint_fwgen::codegen::compile;
use dtaint_fwgen::profiles::add_heartbleed;
use dtaint_fwgen::spec::{Callee, FnSpec, ProgramSpec, Stmt, Val};

/// Figure 5's assembly, transliterated to the arm32e dialect:
///
/// ```text
/// woo: LDR R5,[R1,0x24]; STR R5,[R0,0x4C]; …; BL recv
/// foo: SUB SP,0x118; …; BL woo; …; LDR R1,[Rx,0x4C]; BL memcpy
/// ```
#[test]
fn figure5_foo_woo_flow_is_a_vulnerability() {
    let arch = Arch::Arm32e;
    let mut woo = Assembler::new(arch);
    woo.arm(ArmIns::Ldr { rt: Reg(5), rn: Reg(1), off: 0x24 });
    woo.arm(ArmIns::Str { rt: Reg(5), rn: Reg(0), off: 0x4c });
    woo.arm(ArmIns::MovI { rd: Reg(0), imm: 0 });
    woo.arm(ArmIns::MovR { rd: Reg(1), rm: Reg(5) });
    woo.arm(ArmIns::MovI { rd: Reg(2), imm: 0x200 });
    woo.arm(ArmIns::MovI { rd: Reg(3), imm: 0 });
    woo.call("recv");
    woo.ret();

    let mut foo = Assembler::new(arch);
    foo.arm(ArmIns::SubI { rd: Reg::SP, rn: Reg::SP, imm: 0x118 });
    foo.arm(ArmIns::MovR { rd: Reg(11), rm: Reg(0) });
    foo.call("woo");
    foo.arm(ArmIns::MovR { rd: Reg(2), rm: Reg(0) }); // n = recv length
    foo.arm(ArmIns::Ldr { rt: Reg(1), rn: Reg(11), off: 0x4c });
    foo.arm(ArmIns::AddI { rd: Reg(0), rn: Reg::SP, imm: 0x18 });
    foo.call("memcpy");
    foo.arm(ArmIns::AddI { rd: Reg::SP, rn: Reg::SP, imm: 0x118 });
    foo.ret();

    let mut b = BinaryBuilder::new(arch);
    b.add_function("foo", foo);
    b.add_function("woo", woo);
    b.add_import("recv");
    b.add_import("memcpy");
    let bin = b.link().unwrap();

    let r = Dtaint::new().analyze(&bin, "figure5").unwrap();
    let v = r.vulnerable_paths();
    assert_eq!(r.vulnerabilities(), 1);
    assert_eq!(v[0].kind, VulnKindRepr::BufferOverflow);
    assert_eq!(v[0].sink, "memcpy");
    assert_eq!(v[0].sink_fn, "foo");
    assert_eq!(v[0].sources[0].name, "recv");
    // The data flowed through the structure field written in woo.
    assert_eq!(v[0].observed_in, "foo");
}

/// Figures 2–3: the Heartbleed flow across `ssl3_read_bytes`,
/// `ssl3_read_n`, and `tls1_process_heartbeat`, with `n2s` inlined.
#[test]
fn heartbleed_memcpy_length_traces_to_bio_read() {
    let mut spec = ProgramSpec::new("openssl");
    add_heartbleed(&mut spec);
    let mut main = FnSpec::new("main", 0);
    main.push(Stmt::Call {
        callee: Callee::Func("ssl3_read_bytes".into()),
        args: vec![Val::GlobalAddr("g_ssl".into())],
        ret: None,
    });
    main.push(Stmt::Return(None));
    spec.func(main);
    let bin = compile(&spec, Arch::Arm32e).unwrap();
    let r = Dtaint::new().analyze(&bin, "openssl").unwrap();
    let hb = r
        .vulnerable_paths()
        .into_iter()
        .find(|f| f.sink == "memcpy")
        .expect("heartbleed memcpy found");
    assert!(hb.sources.iter().any(|s| s.name == "BIO_read"));
    assert!(
        hb.tainted_expr.contains("<< 8"),
        "the n2s byte-combination survives into the report: {}",
        hb.tainted_expr
    );
    assert_eq!(hb.sink_fn, "tls1_process_heartbeat");
}

/// §III-C: `int *p = x; *(q+4) = p;` makes `*(*(q+4))` and `*p`
/// aliases. A taint written through one name must be seen through the
/// other.
#[test]
fn pointer_alias_through_store_connects_the_flow() {
    let arch = Arch::Arm32e;
    // store_ptr(q, p): *(q+4) = p
    let mut store_ptr = Assembler::new(arch);
    store_ptr.arm(ArmIns::Str { rt: Reg(1), rn: Reg(0), off: 4 });
    store_ptr.ret();
    // fill(p): recv(0, p, 64, 0)
    let mut fill = Assembler::new(arch);
    fill.arm(ArmIns::MovR { rd: Reg(1), rm: Reg(0) });
    fill.arm(ArmIns::MovI { rd: Reg(0), imm: 0 });
    fill.arm(ArmIns::MovI { rd: Reg(2), imm: 64 });
    fill.arm(ArmIns::MovI { rd: Reg(3), imm: 0 });
    fill.call("recv");
    fill.ret();
    // use_alias(q): system(*(q+4)) — the data arrives via the alias.
    let mut use_alias = Assembler::new(arch);
    use_alias.arm(ArmIns::Ldr { rt: Reg(0), rn: Reg(0), off: 4 });
    use_alias.call("system");
    use_alias.ret();
    // main: q = g_q; p = g_buf; store_ptr(q, p); fill(p); use_alias(q)
    let mut main = Assembler::new(arch);
    main.load_addr(Reg(4), "g_q");
    main.load_addr(Reg(5), "g_buf");
    main.arm(ArmIns::MovR { rd: Reg(0), rm: Reg(4) });
    main.arm(ArmIns::MovR { rd: Reg(1), rm: Reg(5) });
    main.call("store_ptr");
    main.arm(ArmIns::MovR { rd: Reg(0), rm: Reg(5) });
    main.call("fill");
    main.arm(ArmIns::MovR { rd: Reg(0), rm: Reg(4) });
    main.call("use_alias");
    main.ret();

    let mut b = BinaryBuilder::new(arch);
    b.add_function("main", main);
    b.add_function("store_ptr", store_ptr);
    b.add_function("fill", fill);
    b.add_function("use_alias", use_alias);
    b.add_import("recv");
    b.add_import("system");
    b.add_bss("g_q", 16);
    b.add_bss("g_buf", 64);
    let bin = b.link().unwrap();

    let r = Dtaint::new().analyze(&bin, "alias").unwrap();
    let v = r.vulnerable_paths();
    assert!(
        v.iter().any(|f| f.sink == "system" && f.sources.iter().any(|s| s.name == "recv")),
        "taint must flow through the stored-pointer alias: {:?}",
        v.iter().map(|f| f.to_string()).collect::<Vec<_>>()
    );
}

/// Table I, as printed by the configuration.
#[test]
fn table1_sources_and_sinks_match_the_paper() {
    let sinks: Vec<&str> = dtaint_core::SINK_SPECS.iter().map(|s| s.name).collect();
    assert_eq!(
        sinks,
        ["strcpy", "strncpy", "sprintf", "memcpy", "strcat", "sscanf", "system", "popen"]
    );
    for source in
        ["read", "recv", "recvfrom", "recvmsg", "getenv", "fgets", "websGetVar", "find_var"]
    {
        assert!(dtaint_core::SOURCE_NAMES.contains(&source), "{source}");
    }
}
