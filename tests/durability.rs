//! Durability & recovery drills for the batch scanning pipeline.
//!
//! These tests exercise the crash-safety contract end to end through
//! the real CLI: a run killed mid-corpus (via the `FaultFs` drill hook)
//! must leave a durable, in-order prefix behind, and `--resume` must
//! finish the corpus with `findings.json` and `corpus.json` coming out
//! byte-identical to an uninterrupted run. Alongside the interrupt
//! drills, the property tests pin down the `DTC2` salvage counters
//! *exactly* under seeded truncation and single-bit corruption from the
//! `fwgen::mutate` operators.

use std::path::{Path, PathBuf};

use dtaint_cli::run_captured;
use dtaint_dataflow::{CacheFormat, Level, SummaryCache};
use dtaint_fwgen::mutate::{corrupt_bytes, store_fault_corpus, ByteFault};
use proptest::prelude::*;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dtaint-durability-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Packs the profile-0 firmware at `functions` functions.
fn image_bytes(functions: usize, benign: bool) -> Vec<u8> {
    let mut profile = dtaint_fwgen::table2_profiles().remove(0);
    profile.total_functions = functions;
    if benign {
        profile.plants.clear();
        profile.extra_paths = 0;
    }
    dtaint_fwgen::build_firmware(&profile).image.pack(false)
}

/// A three-image corpus whose names sort `alpha < bravo < charlie`,
/// with three *distinct* contents (different content hashes, so resume
/// replay really matches on bytes, not just names).
fn three_image_corpus(tag: &str) -> PathBuf {
    let dir = tmpdir(tag);
    std::fs::write(dir.join("alpha.fwi"), image_bytes(50, false)).unwrap();
    std::fs::write(dir.join("bravo.fwi"), image_bytes(54, false)).unwrap();
    std::fs::write(dir.join("charlie.fwi"), image_bytes(50, true)).unwrap();
    dir
}

fn read(p: &Path) -> Vec<u8> {
    std::fs::read(p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

// ---------------------------------------------------------------------------
// Interrupt → resume
// ---------------------------------------------------------------------------

/// The acceptance drill: kill the run after one committed image, then
/// `--resume` — the database and the corpus summary must come out
/// byte-identical to a run that was never interrupted, and the already
/// committed image must be replayed from the journal, not re-scanned.
#[test]
fn interrupted_batch_resumes_byte_identical_to_uninterrupted() {
    let dir = three_image_corpus("resume");
    let d = dir.to_str().unwrap();
    let sa = dir.join("store-a");
    let sb = dir.join("store-b");

    // Reference: one uninterrupted run.
    let (code, out) = run_captured(&["batch", d, "--store", sa.to_str().unwrap()]);
    assert_eq!(code, Ok(0), "{out}");

    // Drill: the first journal append (image `alpha`) succeeds, then
    // every store write fails — the process "dies" between images.
    let (code, out) = run_captured(&[
        "batch",
        d,
        "--store",
        sb.to_str().unwrap(),
        "--drill-io",
        "kill-after-appends:1",
    ]);
    let err = code.expect_err("the drill must kill the run");
    assert!(err.contains("injected kill"), "died for the drilled reason: {err}\n{out}");

    // Exactly the committed prefix is durable: alpha's report, the
    // cache snapshot, and one journal line — no db, no corpus summary.
    assert!(sb.join("reports/alpha.json").exists(), "committed report survives");
    assert!(!sb.join("reports/bravo.json").exists(), "uncommitted image left nothing");
    assert!(!sb.join("findings.json").exists(), "db is only written by a complete run");
    assert!(!sb.join("reports/corpus.json").exists());
    assert!(sb.join("journal.jsonl").exists(), "the commit point is the journal");

    // Poison the committed report: resume must trust the journal and
    // skip the image entirely, never re-scan (or re-write) it.
    std::fs::write(sb.join("reports/alpha.json"), b"SENTINEL").unwrap();

    let (code, out) = run_captured(&["batch", d, "--store", sb.to_str().unwrap(), "--resume"]);
    assert_eq!(code, Ok(0), "resume finishes the corpus: {out}");

    assert_eq!(
        read(&sa.join("findings.json")),
        read(&sb.join("findings.json")),
        "findings db diverged from the uninterrupted run"
    );
    assert_eq!(
        read(&sa.join("reports/corpus.json")),
        read(&sb.join("reports/corpus.json")),
        "corpus summary diverged from the uninterrupted run"
    );
    assert_eq!(read(&sb.join("reports/alpha.json")), b"SENTINEL", "alpha was re-scanned");
    // Per-image reports carry wall-clock timings, so compare them with
    // the clock zeroed: every logical field must still match.
    let report = |p: &Path| {
        dtaint_core::AnalysisReport::from_json(&String::from_utf8(read(p)).unwrap())
            .unwrap()
            .with_zeroed_wall_clock()
    };
    assert_eq!(
        report(&sa.join("reports/bravo.json")),
        report(&sb.join("reports/bravo.json")),
        "freshly scanned images still match"
    );
    // A completed run retires its journal; the next run starts clean.
    assert!(
        !sb.join("journal.jsonl").exists() || read(&sb.join("journal.jsonl")).is_empty(),
        "journal cleared after completion"
    );
}

/// Without `--resume`, an interrupted run's journal is discarded and
/// the corpus is scanned from scratch — same final bytes, no replay.
#[test]
fn plain_rerun_after_interrupt_discards_the_journal_and_rescans() {
    let dir = three_image_corpus("norescue");
    let d = dir.to_str().unwrap();
    let sb = dir.join("store");
    let (code, _) = run_captured(&[
        "batch",
        d,
        "--store",
        sb.to_str().unwrap(),
        "--drill-io",
        "kill-after-appends:1",
    ]);
    assert!(code.is_err());
    std::fs::write(sb.join("reports/alpha.json"), b"SENTINEL").unwrap();
    let (code, out) = run_captured(&["batch", d, "--store", sb.to_str().unwrap()]);
    assert_eq!(code, Ok(0), "{out}");
    assert_ne!(
        read(&sb.join("reports/alpha.json")),
        b"SENTINEL",
        "a non-resume run must re-scan and re-write every image"
    );
}

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

/// A stalled image times out, surfaces as a `Timeout` outcome with exit
/// 4, and never folds into the findings database.
#[test]
fn deadline_times_out_the_stalled_image_and_exits_4() {
    let dir = tmpdir("deadline");
    let quick = image_bytes(50, false);
    std::fs::write(dir.join("quick.fwi"), &quick).unwrap();
    std::fs::write(dir.join("slow.fwi"), &quick).unwrap();
    let d = dir.to_str().unwrap();

    let (code, out) = run_captured(&["batch", d, "--deadline-secs", "1", "--drill-stall", "slow"]);
    assert_eq!(code, Ok(4), "timeouts are failures, not regressions: {out}");
    assert!(out.contains("!! slow"), "{out}");
    assert!(out.contains("deadline"), "{out}");
    assert!(out.contains("timeout(s)"), "{out}");

    let corpus = std::fs::read_to_string(dir.join(".dtaint-store/reports/corpus.json")).unwrap();
    assert!(corpus.contains("\"timeouts\": 1"), "{corpus}");
    assert!(corpus.contains("\"timeout\": true"), "{corpus}");
    let db = std::fs::read_to_string(dir.join(".dtaint-store/findings.json")).unwrap();
    assert!(!db.contains("\"slow\""), "a timed-out image must never enter the db: {db}");
    assert!(db.contains("\"quick\""), "healthy images still fold: {db}");
}

/// A `Timeout` journal entry is advisory, not final: wall-clock is a
/// property of the host, so `--resume` re-scans the image instead of
/// replaying the timeout.
#[test]
fn resume_rescans_timed_out_images_instead_of_replaying_them() {
    let dir = tmpdir("timeout-resume");
    let bytes = image_bytes(50, false);
    std::fs::write(dir.join("quick.fwi"), &bytes).unwrap();
    std::fs::write(dir.join("slow.fwi"), &bytes).unwrap();
    std::fs::write(dir.join("zulu.fwi"), &bytes).unwrap();
    let d = dir.to_str().unwrap();
    let store = dir.join(".dtaint-store");

    // quick commits (append 1), slow times out and commits (append 2),
    // then zulu's report write hits the injected kill.
    let (code, _) = run_captured(&[
        "batch",
        d,
        "--deadline-secs",
        "1",
        "--drill-stall",
        "slow",
        "--drill-io",
        "kill-after-appends:2",
    ]);
    assert!(code.is_err(), "the drill must kill the run before zulu commits");
    assert!(store.join("journal.jsonl").exists());

    // Resume with the stall lifted: quick replays, slow re-scans (its
    // journaled outcome was Timeout), zulu scans fresh — all clean.
    let (code, out) = run_captured(&["batch", d, "--resume"]);
    assert_eq!(code, Ok(0), "{out}");
    let corpus = std::fs::read_to_string(store.join("reports/corpus.json")).unwrap();
    assert!(corpus.contains("\"timeouts\": 0"), "{corpus}");
    let db = std::fs::read_to_string(store.join("findings.json")).unwrap();
    assert!(db.contains("\"slow\""), "the re-scan folds slow into the db: {db}");
}

// ---------------------------------------------------------------------------
// Corrupt-state recovery
// ---------------------------------------------------------------------------

/// A corrupt findings database is quarantined to a sidecar and the run
/// restarts from a fresh baseline — exit 0, never a spurious exit-2
/// "regression" born from a silently emptied db.
#[test]
fn corrupt_findings_db_is_quarantined_not_a_spurious_regression() {
    let dir = tmpdir("quarantine");
    std::fs::write(dir.join("router.fwi"), image_bytes(50, false)).unwrap();
    let d = dir.to_str().unwrap();
    let store = dir.join(".dtaint-store");

    let (code, out) = run_captured(&["batch", d]);
    assert_eq!(code, Ok(0), "{out}");
    std::fs::write(store.join("findings.json"), b"{ definitely not json").unwrap();

    let (code, out) = run_captured(&["batch", d]);
    assert_eq!(code, Ok(0), "fresh baseline, not a regression: {out}");
    assert!(out.contains("[baseline]"), "{out}");
    let sidecars: Vec<String> = std::fs::read_dir(&store)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("findings.json.corrupt-"))
        .collect();
    assert_eq!(sidecars.len(), 1, "exactly one quarantine sidecar: {sidecars:?}");
    assert_eq!(
        read(&store.join(&sidecars[0])),
        b"{ definitely not json",
        "the corrupt bytes are preserved for inspection"
    );
    let db = std::fs::read_to_string(store.join("findings.json")).unwrap();
    assert!(db.contains("\"router\""), "the db was rebuilt: {db}");
}

/// A legacy `DTC1` cache file loads whole, serves the warm run, and is
/// upgraded to `DTC2` in place.
#[test]
fn legacy_dtc1_cache_upgrades_in_place_and_stays_warm() {
    let dir = tmpdir("dtc1");
    std::fs::write(dir.join("router.fwi"), image_bytes(50, false)).unwrap();
    let d = dir.to_str().unwrap();
    let cache_path = dir.join(".dtaint-store/summaries.dtc");

    let (code, out) = run_captured(&["batch", d]);
    assert_eq!(code, Ok(0), "{out}");
    assert_eq!(&read(&cache_path)[..4], b"DTC2");

    // Downgrade the file to the PR-6 wire format, as if written by an
    // older build.
    let warm = SummaryCache::load(&cache_path);
    std::fs::write(&cache_path, warm.encode_dtc1()).unwrap();
    assert_eq!(&read(&cache_path)[..4], b"DTC1");

    let (code, out) = run_captured(&["batch", d]);
    assert_eq!(code, Ok(0), "{out}");
    let corpus = std::fs::read_to_string(dir.join(".dtaint-store/reports/corpus.json")).unwrap();
    assert!(corpus.contains("\"sym_misses\": 0"), "the legacy cache served the run: {corpus}");
    assert!(corpus.contains("\"ddg_misses\": 0"), "{corpus}");
    assert_eq!(&read(&cache_path)[..4], b"DTC2", "upgraded in place");
}

/// The store lock refuses a second live runner and steals locks left by
/// dead processes.
#[test]
fn store_lock_blocks_live_owners_and_steals_stale_ones() {
    let dir = tmpdir("lock");
    std::fs::write(dir.join("router.fwi"), image_bytes(50, false)).unwrap();
    let d = dir.to_str().unwrap();
    let store = dir.join(".dtaint-store");
    std::fs::create_dir_all(&store).unwrap();

    // pid 1 is always alive: the lock holds.
    std::fs::write(store.join("lock"), b"1").unwrap();
    let (code, _) = run_captured(&["batch", d]);
    let err = code.expect_err("a live lock must refuse the run");
    assert!(err.contains("locked by running process 1"), "{err}");

    // A pid that cannot exist: stale, stolen, run proceeds.
    std::fs::write(store.join("lock"), b"3999999999").unwrap();
    let (code, out) = run_captured(&["batch", d]);
    assert_eq!(code, Ok(0), "{out}");
    assert!(!store.join("lock").exists(), "the lock is released on exit");
}

// ---------------------------------------------------------------------------
// DTC2 salvage — seeded corruption via the fwgen mutate operators
// ---------------------------------------------------------------------------

/// A cache whose records contain no `0xD7` byte outside the markers and
/// checksums: blob values stay below 7 and keys/lengths stay small, so
/// the expected salvage counts under surgical damage are computable.
fn marker_free_cache(lens: &[usize]) -> SummaryCache {
    let c = SummaryCache::new();
    c.begin_scan("drill");
    for (k, &len) in lens.iter().enumerate() {
        c.store(Level::Symex, "drill", k as u64, vec![(k % 7) as u8; len]);
    }
    c
}

/// Byte span of record `k` in the serialized file: records are
/// key-sorted, each `2 (marker) + 1 (level) + 8 (key) + 4 (len) + blob
/// + 8 (checksum)` bytes, after the 16-byte header.
fn record_span(lens: &[usize], k: usize) -> (usize, usize) {
    let mut off = 16;
    for &l in &lens[..k] {
        off += 23 + l;
    }
    (off, off + 23 + lens[k])
}

/// Every mutant in the standard store damage sweep either loads clean
/// or degrades gracefully — and any entry that survives is bit-exact
/// (its record checksum held), never silently wrong.
#[test]
fn store_fault_sweep_never_panics_and_loaded_entries_are_exact() {
    let lens: Vec<usize> = (0..8).map(|k| 5 + k * 3).collect();
    let cache = marker_free_cache(&lens);
    let bytes = cache.to_bytes();
    for (name, mutant) in store_fault_corpus(&bytes, 0xD7A1) {
        let (loaded, report) = SummaryCache::from_bytes(&mutant);
        if mutant == bytes {
            assert!(!report.damaged, "{name}: identical bytes load clean");
        }
        let mut survivors = 0usize;
        for (k, &len) in lens.iter().enumerate() {
            if let Some(blob) = loaded.lookup_blob(Level::Symex, k as u64) {
                assert_eq!(blob, vec![(k % 7) as u8; len], "{name}: entry {k} corrupted in place");
                survivors += 1;
            }
        }
        assert_eq!(report.entries, survivors, "{name}: report counts what actually loaded");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncation at any depth salvages exactly the records that are
    /// fully inside the kept prefix, and the header's promise prices
    /// the damage: `discarded = promised − salvaged`.
    #[test]
    fn dtc2_truncation_salvage_is_exact(
        lens in proptest::collection::vec(1usize..48, 1..10),
        cut_sel in 0u64..1_000_000,
    ) {
        let cache = marker_free_cache(&lens);
        let bytes = cache.to_bytes();
        let total = bytes.len();
        // Keep the header intact; cut strictly inside the record area.
        let keep = 16 + cut_sel as usize % (total - 16);
        let mutant = corrupt_bytes(&bytes, &ByteFault::Truncate { keep });

        let intact = (0..lens.len()).take_while(|&k| record_span(&lens, k).1 <= keep).count();
        let (loaded, report) = SummaryCache::from_bytes(&mutant);
        prop_assert_eq!(report.format, CacheFormat::Dtc2);
        prop_assert!(report.damaged);
        prop_assert_eq!(report.salvaged, intact as u64);
        prop_assert_eq!(report.discarded, (lens.len() - intact) as u64);
        prop_assert_eq!(report.entries, intact);
        for k in 0..lens.len() {
            prop_assert_eq!(
                loaded.lookup_blob(Level::Symex, k as u64).is_some(),
                k < intact,
                "record {} on the wrong side of the cut at {}", k, keep
            );
        }
    }

    /// A single flipped bit costs at most one record: in the magic it
    /// is a cold start, in the rest of the header it voids the promise
    /// (all records salvage, nothing priced), in a record it discards
    /// exactly that record while both neighbors survive.
    #[test]
    fn dtc2_single_bit_flip_salvage_is_exact(
        lens in proptest::collection::vec(1usize..48, 1..10),
        off_sel in 0u64..1_000_000,
        bit in 0u8..8,
    ) {
        let cache = marker_free_cache(&lens);
        let bytes = cache.to_bytes();
        let n = lens.len();
        let offset = off_sel as usize % bytes.len();
        let mutant = corrupt_bytes(&bytes, &ByteFault::FlipAt { offset, bit });
        let (loaded, report) = SummaryCache::from_bytes(&mutant);

        if offset < 4 {
            // Magic gone: not a DTC2 file any more — cold start.
            prop_assert_eq!(report.format, CacheFormat::Unrecognized);
            prop_assert!(report.damaged);
            prop_assert_eq!(report.entries, 0);
        } else if offset < 16 {
            // Count or header checksum: the promise is unreadable, the
            // records themselves are all intact.
            prop_assert_eq!(report.format, CacheFormat::Dtc2);
            prop_assert!(report.damaged);
            prop_assert_eq!(report.salvaged, n as u64);
            prop_assert_eq!(report.discarded, 0);
            prop_assert_eq!(report.entries, n);
        } else {
            // Inside record r: that record fails its checksum (or its
            // marker) and is discarded; the parser resyncs on the next
            // marker and every other record survives bit-exact.
            let r = (0..n).find(|&k| {
                let (lo, hi) = record_span(&lens, k);
                (lo..hi).contains(&offset)
            }).unwrap();
            prop_assert_eq!(report.format, CacheFormat::Dtc2);
            prop_assert!(report.damaged);
            prop_assert_eq!(report.salvaged, (n - 1) as u64);
            prop_assert_eq!(report.discarded, 1);
            for (k, &len) in lens.iter().enumerate() {
                let got = loaded.lookup_blob(Level::Symex, k as u64);
                if k == r {
                    prop_assert!(got.is_none(), "the damaged record {} leaked through", k);
                } else {
                    prop_assert_eq!(got, Some(vec![(k % 7) as u8; len]));
                }
            }
        }
    }
}
