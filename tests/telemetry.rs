//! Observability invariants: spans nest, logical counters are
//! bit-identical across thread counts, exporters round-trip, and the
//! `--profile` output is stable modulo duration fields.
//!
//! The determinism rule under test: wall-clock may appear in span
//! durations and `~`-prefixed display tokens, but never feeds findings
//! or logical counters.

use dtaint_core::{AnalysisReport, Dtaint, DtaintConfig, FnCost};
use dtaint_fwgen::{build_firmware, table2_profiles, GeneratedFirmware};
use dtaint_telemetry::{export_chrome, export_jsonl, Collector, SpanEvent};

fn capped_firmware(index: usize, cap: usize) -> GeneratedFirmware {
    let mut p = table2_profiles().remove(index);
    p.total_functions = p.total_functions.min(cap);
    build_firmware(&p)
}

fn traced_report(fw: &GeneratedFirmware, threads: usize) -> (AnalysisReport, Collector) {
    let config = DtaintConfig { threads, ..Default::default() };
    let mut tel = Collector::enabled();
    let report = Dtaint::with_config(config).analyze_traced(&fw.binary, "tel", &mut tel).unwrap();
    (report, tel)
}

/// The logical view of a cost profile: every deterministic field, with
/// the wall-clock display fields zeroed out.
fn logical(costs: &[FnCost]) -> Vec<FnCost> {
    costs.iter().map(|f| FnCost { symex_us: 0, ddg_us: 0, ..f.clone() }).collect()
}

#[test]
fn spans_nest_scan_function_stage() {
    let fw = capped_firmware(1, 80);
    let (report, tel) = traced_report(&fw, 2);
    assert!(report.functions > 0);
    let events = tel.events();

    let scans: Vec<&SpanEvent> = events.iter().filter(|e| e.cat == "scan").collect();
    assert_eq!(scans.len(), 1, "one root span per scan");
    let root = scans[0];
    assert_eq!(root.lane, 0);
    assert!(root.args.contains_key("pool_nodes"), "root carries the pool allocation stat");

    // Every stage span sits on lane 0 inside the root.
    let stage_names: Vec<&str> =
        events.iter().filter(|e| e.cat == "stage").map(|e| e.name.as_str()).collect();
    for expected in
        ["lift_cfg", "ssa", "ddg", "detect", "ddg_alias", "ddg_indirect", "ddg_propagate"]
    {
        assert!(stage_names.contains(&expected), "missing stage span `{expected}`");
    }
    for ev in events.iter().filter(|e| e.cat == "stage") {
        assert_eq!(ev.lane, 0, "stage `{}` on the scan lane", ev.name);
        assert!(root.contains(ev), "stage `{}` nests inside the scan root", ev.name);
    }
    // The DDG sub-stages nest inside the ddg stage.
    let ddg = events.iter().find(|e| e.name == "ddg" && e.cat == "stage").unwrap();
    for nm in ["ddg_alias", "ddg_indirect", "ddg_propagate"] {
        let sub = events.iter().find(|e| e.name == nm).unwrap();
        assert!(ddg.contains(sub), "`{nm}` nests inside `ddg`");
    }

    // Per-function spans live on worker lanes, inside the root window,
    // and carry their logical counters as args.
    let fn_spans: Vec<&SpanEvent> =
        events.iter().filter(|e| e.cat == "symex_fn" || e.cat == "ddg_fn").collect();
    assert!(fn_spans.len() >= report.functions, "one span per function per stage");
    for ev in &fn_spans {
        assert!(ev.lane >= 1, "function spans use worker lanes");
        assert!(root.contains(ev), "function `{}` nests inside the scan root", ev.name);
        assert!(ev.args.contains_key("addr"), "function spans carry their address");
    }
    assert!(fn_spans.iter().any(|e| e.cat == "symex_fn" && e.args.contains_key("blocks")));
    assert!(fn_spans.iter().any(|e| e.cat == "ddg_fn" && e.args.contains_key("fuel")));
}

#[test]
fn logical_counters_bit_identical_across_threads() {
    let fw = capped_firmware(2, 160); // DGN1000: richest plant mix
    let (base, base_tel) = traced_report(&fw, 1);
    assert!(base.telemetry.metrics.counter("symex.blocks_executed") > 0);
    assert!(base.telemetry.metrics.gauge("image.functions") > 0);
    for threads in [2, 8] {
        let (r, tel) = traced_report(&fw, threads);
        assert_eq!(
            base.telemetry.metrics, r.telemetry.metrics,
            "metrics registry must be bit-identical at {threads} threads"
        );
        assert_eq!(
            logical(&base.telemetry.functions),
            logical(&r.telemetry.functions),
            "per-function logical counters must be bit-identical at {threads} threads"
        );
        assert_eq!(base_tel.metrics, tel.metrics, "collector registries agree at {threads}");
        assert_eq!(base.findings.len(), r.findings.len());
    }
    // Telemetry itself must not perturb the analysis: a disabled
    // collector yields the same logical result.
    let config = DtaintConfig { threads: 2, ..Default::default() };
    let quiet = Dtaint::with_config(config).analyze(&fw.binary, "tel").unwrap();
    assert_eq!(base.telemetry.metrics, quiet.telemetry.metrics);
    assert_eq!(logical(&base.telemetry.functions), logical(&quiet.telemetry.functions));
}

#[test]
fn jsonl_export_round_trips() {
    let fw = capped_firmware(0, 60);
    let (_, tel) = traced_report(&fw, 2);
    let jsonl = export_jsonl(tel.events());
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), tel.events().len());
    for (line, original) in lines.iter().zip(tel.events()) {
        let back: SpanEvent = serde_json::from_str(line).unwrap();
        assert_eq!(&back, original);
    }
}

#[test]
fn chrome_export_is_valid_trace_event_json() {
    let fw = capped_firmware(0, 60);
    let (_, tel) = traced_report(&fw, 2);
    let chrome = export_chrome(tel.events());
    let v: serde_json::Value = serde_json::from_str(&chrome).unwrap();
    let serde_json::Value::Obj(top) = &v else { panic!("top level must be an object") };
    let events = top
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .expect("traceEvents array present");
    let serde_json::Value::Arr(events) = events else { panic!("traceEvents must be an array") };
    assert_eq!(events.len(), tel.events().len());
    for ev in events {
        let serde_json::Value::Obj(fields) = ev else { panic!("each event is an object") };
        for required in ["name", "cat", "ph", "ts", "dur", "pid", "tid", "args"] {
            assert!(fields.iter().any(|(k, _)| k == required), "missing `{required}`");
        }
        let ph = fields.iter().find(|(k, _)| k == "ph").map(|(_, v)| v).unwrap();
        assert_eq!(ph, &serde_json::Value::Str("X".into()), "complete events");
    }
}

#[test]
fn profile_output_stable_modulo_durations() {
    let fw = capped_firmware(0, 60);
    let dir = std::env::temp_dir().join(format!("dtaint-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join("profile.fbf");
    std::fs::write(&p, fw.binary.to_bytes()).unwrap();
    let path = p.to_string_lossy().into_owned();

    let run = |threads: &str| {
        let (code, out) =
            dtaint_cli::run_captured(&["scan", &path, "--profile", "--threads", threads]);
        assert_eq!(code, Ok(2), "{out}");
        out
    };
    let seq = run("1");
    assert!(seq.contains("profile ("), "{seq}");
    assert!(seq.contains("hotspots (by logical work):"), "{seq}");
    // Skip the summary/stage header (raw wall-clock, like the existing
    // CLI tests do), then drop every `~`-prefixed token (the profile's
    // wall-clock-derived ones); what remains — findings, stage names,
    // percentiles, hotspot counters — must be identical across thread
    // counts.
    let strip = |s: &str| {
        s.lines()
            .skip(2)
            .map(|l| {
                l.split_whitespace()
                    .filter(|tok| !tok.starts_with('~'))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect::<Vec<_>>()
    };
    for threads in ["2", "8"] {
        let par = run(threads);
        assert_eq!(strip(&seq), strip(&par), "profile differs at {threads} threads");
    }
}

#[test]
fn scan_exporter_flags_write_parseable_files() {
    let fw = capped_firmware(0, 60);
    let dir = std::env::temp_dir().join(format!("dtaint-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join("export.fbf");
    std::fs::write(&p, fw.binary.to_bytes()).unwrap();
    let path = p.to_string_lossy().into_owned();
    let trace = dir.join("trace.jsonl");
    let chrome = dir.join("trace.chrome.json");
    let metrics = dir.join("metrics.json");

    let (code, _) = dtaint_cli::run_captured(&[
        "scan",
        &path,
        "--quiet",
        "--trace-out",
        trace.to_str().unwrap(),
        "--trace-chrome",
        chrome.to_str().unwrap(),
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    assert_eq!(code, Ok(2));

    let jsonl = std::fs::read_to_string(&trace).unwrap();
    let spans: Vec<SpanEvent> = jsonl.lines().map(|l| serde_json::from_str(l).unwrap()).collect();
    assert!(spans.iter().any(|e| e.cat == "scan"));
    assert!(spans.iter().any(|e| e.name == "ddg_propagate"));

    let chrome_json = std::fs::read_to_string(&chrome).unwrap();
    let v: serde_json::Value = serde_json::from_str(&chrome_json).unwrap();
    assert!(matches!(v, serde_json::Value::Obj(_)));

    let metrics_json = std::fs::read_to_string(&metrics).unwrap();
    let m: dtaint_telemetry::MetricsRegistry = serde_json::from_str(&metrics_json).unwrap();
    assert!(m.counter("symex.blocks_executed") > 0);
    assert!(m.gauge("stage.ddg_us") > 0 || metrics_json.contains("stage.ddg_us"));
    assert!(m.gauge("image.functions") > 0);
}
