//! End-to-end coverage of the 16-bit memory accesses: the `n2s` length
//! read of Heartbleed is a halfword load in optimized builds, so the
//! whole stack (ISA, lifter, symbolic evaluator, emulator, detector)
//! must agree on `LDRH`/`LH` semantics.

use dtaint_core::Dtaint;
use dtaint_emu::{Exit, Machine};
use dtaint_fwbin::Arch;
use dtaint_fwgen::compile;
use dtaint_fwgen::spec::{Callee, FnSpec, ProgramSpec, Stmt, Val};

/// Heartbeat variant where the attacker length is read as one halfword
/// (`payload = *(u16*)(p + 1)`), not two byte loads.
fn halfword_heartbeat(arch: Arch) -> dtaint_fwbin::Binary {
    let mut spec = ProgramSpec::new("hb16");
    let mut f = FnSpec::new("process", 0);
    let rec = f.buf(0x200);
    let out = f.buf(0x40);
    let payload = f.local();
    f.push(Stmt::Call {
        callee: Callee::Import("recv".into()),
        args: vec![Val::Const(0), Val::BufAddr(rec), Val::Const(0x200), Val::Const(0)],
        ret: None,
    });
    f.push(Stmt::LoadHalf { dst: payload, base: Val::BufAddr(rec), off: 1 });
    f.push(Stmt::Call {
        callee: Callee::Import("memcpy".into()),
        args: vec![Val::BufAddr(out), Val::BufAddr(rec), Val::Local(payload)],
        ret: None,
    });
    f.push(Stmt::Return(None));
    spec.func(f);
    let mut main = FnSpec::new("main", 0);
    main.push(Stmt::Call { callee: Callee::Func("process".into()), args: vec![], ret: None });
    main.push(Stmt::Return(None));
    spec.func(main);
    compile(&spec, arch).unwrap()
}

#[test]
fn halfword_length_flow_is_detected_statically() {
    for arch in [Arch::Arm32e, Arch::Mips32e] {
        let bin = halfword_heartbeat(arch);
        let r = Dtaint::new().analyze(&bin, "hb16").unwrap();
        let v = r.vulnerable_paths();
        assert!(
            v.iter().any(|f| f.sink == "memcpy" && f.sources.iter().any(|s| s.name == "recv")),
            "{arch}: halfword-length memcpy must be found"
        );
        // The tainted expression is a 16-bit memory read of the buffer.
        let hb = v.iter().find(|f| f.sink == "memcpy").unwrap();
        assert!(hb.tainted_expr.contains("deref"), "{}", hb.tainted_expr);
    }
}

#[test]
fn halfword_roundtrip_in_the_emulator() {
    // store 0xBEEF as a halfword, read it back; both dialects.
    for arch in [Arch::Arm32e, Arch::Mips32e] {
        let mut spec = ProgramSpec::new("h");
        let mut f = FnSpec::new("main", 0);
        let b = f.buf(8);
        let v = f.local();
        f.push(Stmt::StoreHalf { base: Val::BufAddr(b), off: 2, src: Val::Const(0xbeef) });
        f.push(Stmt::LoadHalf { dst: v, base: Val::BufAddr(b), off: 2 });
        f.push(Stmt::Return(Some(Val::Local(v))));
        spec.func(f);
        let bin = compile(&spec, arch).unwrap();
        assert_eq!(Machine::new(&bin).run("main"), Exit::Returned(0xbeef), "{arch}");
    }
}

#[test]
fn halfword_attack_actually_overflows_dynamically() {
    use dtaint_emu::{validate, AttackConfig, Verdict};
    for arch in [Arch::Arm32e, Arch::Mips32e] {
        let bin = halfword_heartbeat(arch);
        // 0x200 'A's: payload halfword = 0x4141 = 16705 → memcpy of 16k
        // bytes out of a 0x200 buffer into a 0x40 buffer.
        let config = AttackConfig { input_frames: 2, ..Default::default() };
        let verdict = validate(&bin, "main", &config);
        assert!(
            matches!(verdict, Verdict::MemoryCorruption(_)),
            "{arch}: expected corruption, got {verdict:?}"
        );
    }
}
