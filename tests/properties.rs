//! Property-based tests over the whole stack: arbitrary generated
//! programs must compile, link, lift, and analyze without panics, and
//! planted flows must be found regardless of the surrounding noise.

use dtaint_core::Dtaint;
use dtaint_fwbin::{Arch, Binary};
use dtaint_fwgen::compile;
use dtaint_fwgen::filler::add_filler;
use dtaint_fwgen::spec::{Callee, FnSpec, ProgramSpec, Stmt, Val};
use dtaint_fwgen::templates::{plant, PlantKind, PlantSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arch_strategy() -> impl Strategy<Value = Arch> {
    prop_oneof![Just(Arch::Arm32e), Just(Arch::Mips32e)]
}

fn kind_strategy() -> impl Strategy<Value = PlantKind> {
    prop_oneof![
        Just(PlantKind::CmdiGetenvSystem),
        Just(PlantKind::CmdiWebsgetvarSystem),
        Just(PlantKind::CmdiFindvarPopen),
        Just(PlantKind::BofReadStrncpy),
        Just(PlantKind::BofGetenvSprintf),
        Just(PlantKind::BofGetenvStrcpy),
        Just(PlantKind::BofRecvMemcpy),
        Just(PlantKind::BofSscanfRtsp),
        Just(PlantKind::BofReadMemcpySmall),
        Just(PlantKind::BofReadLoopcopy),
        Just(PlantKind::BofUrlParamAliasIndirect),
    ]
}

/// Builds a program with one plant surrounded by seeded filler noise.
fn noisy_program(
    kind: PlantKind,
    sanitized: bool,
    depth: u8,
    filler: usize,
    seed: u64,
    arch: Arch,
) -> Binary {
    let mut spec = ProgramSpec::new("prop");
    let gt = plant(&mut spec, &PlantSpec::new(kind, "p", sanitized, depth));
    let mut rng = StdRng::seed_from_u64(seed);
    let names = add_filler(&mut spec, "noise_", filler, &mut rng);
    let mut main = FnSpec::new("main", 0);
    main.push(Stmt::Call { callee: Callee::Func(gt.entry_fn), args: vec![], ret: None });
    for n in names.iter().rev().take(3) {
        main.push(Stmt::Call {
            callee: Callee::Func(n.clone()),
            args: vec![Val::Const(2)],
            ret: None,
        });
    }
    main.push(Stmt::Return(None));
    spec.func(main);
    compile(&spec, arch).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The detector's verdict is exactly the ground truth, for every
    /// template kind, on both architectures, under arbitrary noise.
    #[test]
    fn verdict_matches_ground_truth(
        kind in kind_strategy(),
        sanitized in any::<bool>(),
        depth in 0u8..3,
        filler in 0usize..25,
        seed in any::<u64>(),
        arch in arch_strategy(),
    ) {
        let bin = noisy_program(kind, sanitized, depth, filler, seed, arch);
        let r = Dtaint::new().analyze(&bin, "prop").unwrap();
        if sanitized {
            prop_assert_eq!(r.vulnerabilities(), 0, "guarded twin misreported");
        } else {
            prop_assert_eq!(r.vulnerabilities(), 1, "plant missed or duplicated");
        }
    }

    /// Every byte sequence either decodes or errors — flipping bits in a
    /// linked binary's text never panics the lifter/CFG layers.
    #[test]
    fn bitflips_never_panic_the_pipeline(
        seed in any::<u64>(),
        flip_at in 0usize..256,
        flip_bit in 0u8..32,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut spec = ProgramSpec::new("flip");
        let names = add_filler(&mut spec, "f_", 3, &mut rng);
        let mut main = FnSpec::new("main", 0);
        for n in &names {
            main.push(Stmt::Call { callee: Callee::Func(n.clone()), args: vec![Val::Const(1)], ret: None });
        }
        main.push(Stmt::Return(None));
        spec.func(main);
        let bin = compile(&spec, Arch::Mips32e).unwrap();
        let mut bytes = bin.to_bytes();
        // Flip one bit somewhere in the serialized form.
        let pos = flip_at % bytes.len();
        bytes[pos] ^= 1u8.rotate_left(flip_bit as u32 % 8);
        if let Ok(parsed) = Binary::from_bytes(&bytes) {
            // Either analyzes or errors cleanly; never panics.
            let _ = Dtaint::new().analyze(&parsed, "flip");
        }
    }

    /// Filler-only programs are never flagged (no false positives from
    /// benign code), regardless of seed and size.
    #[test]
    fn benign_programs_are_never_flagged(
        seed in any::<u64>(),
        n in 1usize..30,
        arch in arch_strategy(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut spec = ProgramSpec::new("benign");
        let names = add_filler(&mut spec, "b_", n, &mut rng);
        let mut main = FnSpec::new("main", 0);
        for nm in names.iter().rev().take(4) {
            main.push(Stmt::Call { callee: Callee::Func(nm.clone()), args: vec![Val::Const(3)], ret: None });
        }
        main.push(Stmt::Return(None));
        spec.func(main);
        let bin = compile(&spec, arch).unwrap();
        let r = Dtaint::new().analyze(&bin, "benign").unwrap();
        prop_assert_eq!(r.vulnerabilities(), 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The incremental cache's content hash is a pure function of salt,
    /// address, name, and raw bytes — it takes no pool, no thread count,
    /// no scheduling state, so it is trivially stable across pool
    /// layouts — and it moves whenever any of its inputs moves.
    #[test]
    fn summary_content_hash_is_pure_and_sensitive(
        salt in any::<u64>(),
        addr in any::<u32>(),
        bytes in proptest::collection::vec(any::<u8>(), 1..64),
        flip in 0usize..64,
    ) {
        use dtaint_dataflow::cache::function_content_hash;
        let h = function_content_hash(salt, addr, "f", &bytes);
        prop_assert_eq!(h, function_content_hash(salt, addr, "f", &bytes), "hash must be pure");
        let mut flipped = bytes.clone();
        let i = flip % bytes.len();
        flipped[i] ^= 1;
        prop_assert_ne!(h, function_content_hash(salt, addr, "f", &flipped), "byte flip ignored");
        prop_assert_ne!(h, function_content_hash(salt ^ 1, addr, "f", &bytes), "salt ignored");
        prop_assert_ne!(h, function_content_hash(salt, addr ^ 1, "f", &bytes), "address ignored");
        prop_assert_ne!(h, function_content_hash(salt, addr, "g", &bytes), "name ignored");
    }

    /// A function's final DDG key moves whenever its own hash or any
    /// callee's key moves, and never when neither does.
    #[test]
    fn final_key_tracks_own_hash_and_callee_keys(
        salt in any::<u64>(),
        own in any::<u64>(),
        callees in proptest::collection::vec(any::<u64>(), 0..6),
        bump in 0usize..6,
    ) {
        use dtaint_dataflow::cache::{combine_scc, compose_final_key};
        let k = compose_final_key(salt, own, None, &callees);
        prop_assert_eq!(k, compose_final_key(salt, own, None, &callees), "key must be pure");
        prop_assert_ne!(k, compose_final_key(salt, own ^ 1, None, &callees), "own hash ignored");
        prop_assert_ne!(k, compose_final_key(salt ^ 1, own, None, &callees), "salt ignored");
        if !callees.is_empty() {
            let mut moved = callees.clone();
            let i = bump % moved.len();
            moved[i] ^= 1;
            prop_assert_ne!(k, compose_final_key(salt, own, None, &moved), "callee key ignored");
        }
        // Joining a recursive component changes the key even when the
        // combined hash coincides with the own hash's inputs.
        let scc = combine_scc(&[(1, own), (2, own ^ 7)]);
        prop_assert_ne!(k, compose_final_key(salt, own, Some(scc), &callees));
        // SCC combination is member-order-insensitive (whole-SCC
        // granularity must not depend on traversal order).
        let swapped = combine_scc(&[(2, own ^ 7), (1, own)]);
        prop_assert_eq!(scc, swapped, "SCC combine must sort members");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The SSE alias fixpoint terminates within any round budget, the
    /// default budget finds every planted multi-level chain, and budget
    /// beyond the fixpoint is a no-op — the saturated state is
    /// idempotent, so findings are bit-identical.
    #[test]
    fn sse_fixpoint_terminates_and_is_idempotent(
        kind in prop_oneof![
            Just(PlantKind::BofAliasDeep2),
            Just(PlantKind::BofAliasDeep3),
            Just(PlantKind::BofAliasCalleeLoad),
            Just(PlantKind::BofAliasOffset),
        ],
        filler in 0usize..15,
        seed in any::<u64>(),
        arch in arch_strategy(),
    ) {
        let bin = noisy_program(kind, false, 0, filler, seed, arch);
        let run = |rounds: u32| {
            let mut config = dtaint_core::DtaintConfig::default();
            config.dataflow.alias.max_rounds = rounds;
            let r = Dtaint::with_config(config).analyze(&bin, "prop").unwrap();
            (r.vulnerabilities(), r.findings.iter().map(|f| f.to_string()).collect::<Vec<_>>())
        };
        let (v_starved, _) = run(1);
        let (v6, f6) = run(6);
        let (v12, f12) = run(12);
        prop_assert!(v6 >= 1, "deep plant must be found at the default budget");
        prop_assert_eq!(v6, v12, "extra rounds past the fixpoint changed the verdict");
        prop_assert_eq!(f6, f12, "extra rounds past the fixpoint changed the findings");
        prop_assert!(v_starved <= v6, "a starved round budget cannot find more");
    }

    /// Every semantic field of `AliasConfig` — and nothing else —
    /// participates in the DDG cache salt: two configs key identically
    /// exactly when mode, depth, and round budgets agree, regardless of
    /// thread count.
    #[test]
    fn alias_config_fields_all_salt_the_ddg_key(
        sse_a in any::<bool>(), depth_a in 0u32..16, rounds_a in 0u32..16,
        sse_b in any::<bool>(), depth_b in 0u32..16, rounds_b in 0u32..16,
        threads_a in 0usize..16, threads_b in 0usize..16,
    ) {
        use dtaint_dataflow::cache::ddg_salt;
        use dtaint_dataflow::{AliasConfig, AliasMode, DataflowConfig};
        let mk = |sse: bool, d: u32, r: u32, t: usize| DataflowConfig {
            threads: t,
            alias: AliasConfig {
                mode: if sse { AliasMode::Sse } else { AliasMode::Store },
                max_depth: d,
                max_rounds: r,
            },
            ..Default::default()
        };
        let env = 0x1234_5678_9abc_def0;
        let a = ddg_salt(env, &mk(sse_a, depth_a, rounds_a, threads_a));
        let b = ddg_salt(env, &mk(sse_b, depth_b, rounds_b, threads_b));
        let same_semantics = sse_a == sse_b && depth_a == depth_b && rounds_a == rounds_b;
        prop_assert_eq!(a == b, same_semantics, "salt must track exactly the semantic fields");
    }
}

/// Thread count and tracing knobs are *not* part of the cache salts —
/// a cache populated at one `--threads` must serve any other — while
/// semantic analysis knobs are.
#[test]
fn cache_salts_ignore_thread_count_but_track_semantics() {
    use dtaint_dataflow::cache::{ddg_salt, sym_salt};
    use dtaint_dataflow::DataflowConfig;
    use dtaint_symex::SymexConfig;
    let env = 0x1234_5678_9abc_def0;
    let d1 = DataflowConfig { threads: 1, ..Default::default() };
    let d8 = DataflowConfig { threads: 8, ..Default::default() };
    assert_eq!(ddg_salt(env, &d1), ddg_salt(env, &d8), "threads must not salt DDG keys");
    let guards = DataflowConfig { interval_guards: true, ..Default::default() };
    assert_ne!(ddg_salt(env, &d1), ddg_salt(env, &guards), "interval guards change semantics");
    let s = SymexConfig::default();
    let starved = SymexConfig { max_fuel: 2, ..Default::default() };
    assert_eq!(sym_salt(env, &s), sym_salt(env, &s));
    assert_ne!(sym_salt(env, &s), sym_salt(env, &starved), "fuel budget changes summaries");
    assert_ne!(sym_salt(env, &s), sym_salt(env ^ 1, &s), "environment digest must salt keys");
}

#[test]
fn corpus_statistics_are_stable_across_seeds() {
    // The Figure 1 shape holds for any seed: unpack failures dominate,
    // emulation success is a small minority.
    for seed in [1u64, 99, 12345] {
        let corpus = dtaint_fwimage::generate_corpus(&dtaint_fwimage::CorpusConfig {
            n_images: 800,
            seed,
            ..Default::default()
        });
        let stats = dtaint_fwimage::triage(&corpus);
        let total: usize = stats.values().map(|s| s.total).sum();
        let unpacked: usize = stats.values().map(|s| s.unpacked).sum();
        let emulated: usize = stats.values().map(|s| s.emulated).sum();
        assert!(unpacked * 2 < total, "seed {seed}: unpack failures must dominate");
        assert!(emulated * 5 < total, "seed {seed}: emulation is a small minority");
        assert!(emulated > 0, "seed {seed}: some images do boot");
    }
}
