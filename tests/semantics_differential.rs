//! Differential testing of the two semantic stacks: for programs with
//! fully concrete inputs, the static symbolic analysis must constant-fold
//! the return value to exactly what the concrete emulator computes.
//!
//! Any divergence means the lifter (IR semantics) and the CPU
//! interpreter disagree about an instruction — the class of bug that
//! silently corrupts every analysis built on top.

use dtaint_cfg::build_all_cfgs;
use dtaint_emu::{Exit, Machine};
use dtaint_fwbin::Arch;
use dtaint_fwgen::compile;
use dtaint_fwgen::spec::{Arith, Cmp, FnSpec, LocalId, ProgramSpec, Stmt, Val};
use dtaint_symex::{analyze_function, ExprPool, SymexConfig};
use proptest::prelude::*;

/// One random straight-line/branchy statement over two locals.
#[derive(Debug, Clone)]
enum Op {
    Bin(Arith, u32),
    SetConst(u32),
    IfSwap(Cmp, u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            prop_oneof![
                Just(Arith::Add),
                Just(Arith::Sub),
                Just(Arith::Mul),
                Just(Arith::And),
                Just(Arith::Or),
                Just(Arith::Xor),
            ],
            1u32..0x7fff,
        )
            .prop_map(|(a, c)| Op::Bin(a, c)),
        (1u32..0x7fff).prop_map(Op::SetConst),
        (
            prop_oneof![
                Just(Cmp::Eq),
                Just(Cmp::Ne),
                Just(Cmp::Lt),
                Just(Cmp::Ge),
                Just(Cmp::Le),
                Just(Cmp::Gt),
            ],
            1u32..0x7fff,
        )
            .prop_map(|(c, v)| Op::IfSwap(c, v)),
    ]
}

/// Builds `main` from the op list: locals a, b evolve; returns a.
fn program(ops: &[Op], seed: u32) -> ProgramSpec {
    let mut p = ProgramSpec::new("diff");
    let mut f = FnSpec::new("main", 0);
    let a = f.local();
    let b = f.local();
    f.push(Stmt::Set { dst: a, src: Val::Const(seed) });
    f.push(Stmt::Set { dst: b, src: Val::Const(seed.rotate_left(7) | 1) });
    for op in ops {
        match op {
            Op::Bin(arith, c) => {
                f.push(Stmt::Bin { dst: a, op: *arith, lhs: Val::Local(a), rhs: Val::Const(*c) });
                f.push(Stmt::Bin {
                    dst: b,
                    op: Arith::Xor,
                    lhs: Val::Local(b),
                    rhs: Val::Local(a),
                });
            }
            Op::SetConst(c) => {
                f.push(Stmt::Set { dst: b, src: Val::Const(*c) });
            }
            Op::IfSwap(cmp, v) => {
                // if (a <cmp> v) { a = b } else { b = a + 1 }
                f.push(Stmt::If {
                    lhs: Val::Local(a),
                    op: *cmp,
                    rhs: Val::Const(*v),
                    then: vec![Stmt::Set { dst: a, src: Val::Local(b) }],
                    els: vec![Stmt::Bin {
                        dst: b,
                        op: Arith::Add,
                        lhs: Val::Local(a),
                        rhs: Val::Const(1),
                    }],
                });
            }
        }
    }
    f.push(Stmt::Return(Some(Val::Local(a))));
    let _ = LocalId(0);
    p.func(f);
    p
}

fn run_both(ops: &[Op], seed: u32, arch: Arch) -> (u32, Option<i64>) {
    let spec = program(ops, seed);
    let bin = compile(&spec, arch).unwrap();
    // Concrete.
    let mut m = Machine::new(&bin);
    let Exit::Returned(concrete) = m.run("main") else {
        panic!("program must terminate cleanly");
    };
    // Symbolic.
    let cfgs = build_all_cfgs(&bin).unwrap();
    let cfg = cfgs.iter().find(|c| c.name == "main").unwrap();
    let mut pool = ExprPool::new();
    let s = analyze_function(&bin, cfg, &mut pool, &SymexConfig::default());
    // All inputs are constants, so exactly one path is feasible and the
    // return value folds to a constant.
    let symbolic = s.ret_values.iter().find_map(|&r| pool.as_const(r));
    (concrete, symbolic)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn symbolic_constant_folding_matches_concrete_execution(
        ops in proptest::collection::vec(op_strategy(), 1..12),
        seed in 1u32..0xffff,
        mips in any::<bool>(),
    ) {
        let arch = if mips { Arch::Mips32e } else { Arch::Arm32e };
        let (concrete, symbolic) = run_both(&ops, seed, arch);
        prop_assert_eq!(
            symbolic.map(|v| v as u32),
            Some(concrete),
            "lifter and CPU disagree on {} for ops {:?}",
            arch,
            ops
        );
    }
}

#[test]
fn shift_semantics_agree_across_stacks() {
    // Shifts use immediate encodings on MIPS; exercise them directly.
    for arch in [Arch::Arm32e, Arch::Mips32e] {
        for sh in [0u32, 1, 7, 31] {
            let mut p = ProgramSpec::new("sh");
            let mut f = FnSpec::new("main", 0);
            let a = f.local();
            f.push(Stmt::Set { dst: a, src: Val::Const(0x8123_4567) });
            f.push(Stmt::Bin { dst: a, op: Arith::Shr, lhs: Val::Local(a), rhs: Val::Const(sh) });
            f.push(Stmt::Bin { dst: a, op: Arith::Shl, lhs: Val::Local(a), rhs: Val::Const(sh) });
            f.push(Stmt::Return(Some(Val::Local(a))));
            p.func(f);
            let bin = compile(&p, arch).unwrap();
            let Exit::Returned(concrete) = Machine::new(&bin).run("main") else { panic!() };
            let cfgs = build_all_cfgs(&bin).unwrap();
            let mut pool = ExprPool::new();
            let s = analyze_function(&bin, &cfgs[0], &mut pool, &SymexConfig::default());
            let symbolic = s.ret_values.iter().find_map(|&r| pool.as_const(r)).unwrap();
            assert_eq!(symbolic as u32, concrete, "{arch} shift {sh}");
        }
    }
}
