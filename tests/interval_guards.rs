//! The interval abstract-interpretation extension: symbolic guards are
//! resolved through definition pairs, destination capacity covers named
//! globals, contradictory paths are suppressed, and counted loops are
//! judged by trip count. Each static verdict is cross-checked against
//! the paper-faithful and strict modes (documenting the gaps those
//! close) and against the concrete emulator.

use dtaint_core::{Dtaint, DtaintConfig};
use dtaint_emu::{validate, AttackConfig, Verdict};
use dtaint_fwbin::Arch;
use dtaint_fwgen::compile;
use dtaint_fwgen::spec::{Callee, FnSpec, ProgramSpec, Stmt};
use dtaint_fwgen::templates::{plant, PlantKind, PlantSpec};

fn build(kind: PlantKind, sanitized: bool, arch: Arch) -> dtaint_fwbin::Binary {
    let mut spec = ProgramSpec::new("iv");
    let gt = plant(&mut spec, &PlantSpec::new(kind, "t", sanitized, 0));
    let mut main = FnSpec::new("main", 0);
    main.push(Stmt::Call { callee: Callee::Func(gt.entry_fn), args: vec![], ret: None });
    main.push(Stmt::Return(None));
    spec.func(main);
    compile(&spec, arch).unwrap()
}

fn analyze(
    bin: &dtaint_fwbin::Binary,
    interval: bool,
    strict: bool,
) -> dtaint_core::AnalysisReport {
    let config =
        DtaintConfig { interval_guards: interval, strict_bounds: strict, ..Default::default() };
    Dtaint::with_config(config).analyze(bin, "iv").unwrap()
}

#[test]
fn interval_mode_resolves_symbolic_guards() {
    for arch in [Arch::Arm32e, Arch::Mips32e] {
        // `if (n < y)` with y = 1024 against a 256-byte stack buffer:
        // both syntactic modes trust the guard, the interval solver
        // resolves y and rejects it.
        let weak = build(PlantKind::BofSymbolicBound, false, arch);
        assert_eq!(analyze(&weak, false, false).vulnerabilities(), 0, "{arch}: paper gap");
        assert_eq!(analyze(&weak, false, true).vulnerabilities(), 0, "{arch}: strict gap");
        assert_eq!(analyze(&weak, true, false).vulnerabilities(), 1, "{arch}: interval flags");
        // y = 200 fits: stays sanitized in interval mode too.
        let fitting = build(PlantKind::BofSymbolicBound, true, arch);
        let r = analyze(&fitting, true, false);
        assert_eq!(r.vulnerabilities(), 0, "{arch}: fitting symbolic bound is sanitisation");
        assert!(r.findings.iter().any(|f| f.sanitized()), "{arch}: the flow is seen");
    }
}

#[test]
fn infeasible_paths_are_suppressed() {
    for arch in [Arch::Arm32e, Arch::Mips32e] {
        // `if (sel == 5) { if (sel == 7) { memcpy } }` is dead code:
        // the syntactic modes report it (Eq guards are not bounding),
        // the interval mode proves the contradiction and drops it.
        let dead = build(PlantKind::BofInfeasiblePath, true, arch);
        assert_eq!(analyze(&dead, false, false).vulnerabilities(), 1, "{arch}: paper FP");
        assert_eq!(analyze(&dead, false, true).vulnerabilities(), 1, "{arch}: strict FP");
        let r = analyze(&dead, true, false);
        assert_eq!(r.vulnerabilities(), 0, "{arch}: contradictory path suppressed");
        assert!(r.infeasible_suppressed >= 1, "{arch}: suppression is counted");
        // The feasible single-check twin stays a finding everywhere.
        let live = build(PlantKind::BofInfeasiblePath, false, arch);
        let r = analyze(&live, true, false);
        assert_eq!(r.vulnerabilities(), 1, "{arch}: consistent selector path is kept");
    }
}

#[test]
fn interval_verdicts_match_the_emulator() {
    let attack = AttackConfig { overflow_len: 1000, input_frames: 2, ..Default::default() };
    // The oversized symbolic guard admits a 1000-byte copy into 256.
    let bin = build(PlantKind::BofSymbolicBound, false, Arch::Arm32e);
    assert!(
        matches!(validate(&bin, "main", &attack), Verdict::MemoryCorruption(_)),
        "y = 1024 lets 1000 bytes through a 256-byte buffer"
    );
    // The fitting guard blocks the same probe.
    let bin = build(PlantKind::BofSymbolicBound, true, Arch::Arm32e);
    assert_eq!(validate(&bin, "main", &attack), Verdict::NoEffect);
    // The dead selector path never executes its copy.
    let bin = build(PlantKind::BofInfeasiblePath, true, Arch::Arm32e);
    assert_eq!(validate(&bin, "main", &attack), Verdict::NoEffect);
    // The live selector path does, and crashes.
    let bin = build(PlantKind::BofInfeasiblePath, false, Arch::Arm32e);
    assert!(matches!(validate(&bin, "main", &attack), Verdict::MemoryCorruption(_)));
}

#[test]
fn global_destinations_get_object_capacity() {
    for arch in [Arch::Arm32e, Arch::Mips32e] {
        // `if (n < 1024) memcpy(g_dst64, buf, n)`: no stack capacity, so
        // strict mode falls back to trusting the guard; the interval
        // mode measures the 64-byte object symbol.
        let weak = build(PlantKind::BofGlobalDst, false, arch);
        assert_eq!(analyze(&weak, false, true).vulnerabilities(), 0, "{arch}: strict gap");
        assert_eq!(analyze(&weak, true, false).vulnerabilities(), 1, "{arch}: interval flags");
        let fitting = build(PlantKind::BofGlobalDst, true, arch);
        assert_eq!(analyze(&fitting, true, false).vulnerabilities(), 0, "{arch}: n < 48 fits");
    }
}

#[test]
fn oversized_counted_loops_are_judged_by_trip_count() {
    for arch in [Arch::Arm32e, Arch::Mips32e] {
        // A counted 1024-byte loop into a 64-byte stack buffer: the
        // paper's judgement accepts any counted loop.
        let weak = build(PlantKind::BofLoopcopyOversized, false, arch);
        assert_eq!(analyze(&weak, false, false).vulnerabilities(), 0, "{arch}: paper gap");
        assert_eq!(analyze(&weak, true, false).vulnerabilities(), 1, "{arch}: interval flags");
        let fitting = build(PlantKind::BofLoopcopyOversized, true, arch);
        assert_eq!(analyze(&fitting, true, false).vulnerabilities(), 0, "{arch}: 48 fits");
    }
    // And the oversized loop really smashes the frame.
    let bin = build(PlantKind::BofLoopcopyOversized, false, Arch::Arm32e);
    let attack = AttackConfig { overflow_len: 1000, input_frames: 2, ..Default::default() };
    assert!(matches!(validate(&bin, "main", &attack), Verdict::MemoryCorruption(_)));
}

#[test]
fn interval_findings_are_deterministic_across_threads() {
    // One binary with every interval-sensitive plant, vulnerable and
    // sanitised twins side by side.
    let mut spec = ProgramSpec::new("det");
    let mut main = FnSpec::new("main", 0);
    let kinds = [
        PlantKind::BofSymbolicBound,
        PlantKind::BofInfeasiblePath,
        PlantKind::BofGlobalDst,
        PlantKind::BofLoopcopyOversized,
        PlantKind::BofWeakBound,
    ];
    for (i, kind) in kinds.iter().enumerate() {
        for sanitized in [false, true] {
            let id = format!("p{i}{}", u8::from(sanitized));
            let gt = plant(&mut spec, &PlantSpec::new(*kind, &id, sanitized, 0));
            main.push(Stmt::Call { callee: Callee::Func(gt.entry_fn), args: vec![], ret: None });
        }
    }
    main.push(Stmt::Return(None));
    spec.func(main);
    let bin = compile(&spec, Arch::Arm32e).unwrap();

    let run = |threads: usize| {
        let config = DtaintConfig { interval_guards: true, threads, ..DtaintConfig::default() };
        Dtaint::with_config(config).analyze(&bin, "det").unwrap()
    };
    let seq = run(1);
    let par = run(4);
    assert!(seq.vulnerabilities() >= 4, "all planted vulns present: {}", seq.vulnerabilities());
    assert_eq!(
        serde_json::to_string(&seq.findings).unwrap(),
        serde_json::to_string(&par.findings).unwrap(),
        "findings must be bit-identical across thread counts"
    );
    assert_eq!(seq.infeasible_suppressed, par.infeasible_suppressed);
}
