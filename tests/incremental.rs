//! Differential harness for the incremental summary cache: a
//! warm-cache scan must be **byte-identical** (full `PartialEq`,
//! evidence and telemetry counters included) to a cold scan of the same
//! image — on every Table II profile, at every thread count — and the
//! set of functions that miss the cache after an edit must be exactly
//! the changed functions plus their transitive callers.

use dtaint_core::{AnalysisReport, CacheRef, Dtaint, DtaintConfig, SummaryCache};
use dtaint_fwgen::{build_firmware, build_version_pair, table2_profiles, GeneratedFirmware};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Builds one Table II profile with the function count capped, so the
/// debug-mode suite stays fast.
fn capped_firmware(index: usize, cap: usize) -> GeneratedFirmware {
    let mut p = table2_profiles().remove(index);
    p.total_functions = p.total_functions.min(cap);
    build_firmware(&p)
}

fn scan(fw: &GeneratedFirmware, threads: usize, cache: Option<CacheRef>) -> AnalysisReport {
    let config = DtaintConfig { threads, cache, ..Default::default() };
    Dtaint::with_config(config).analyze(&fw.binary, "img").unwrap()
}

/// Cold scan == warm scan, full `PartialEq` after zeroing the only
/// non-deterministic fields (wall-clock durations), for every profile
/// and every thread count the parallel merge exercises.
#[test]
fn warm_scan_is_byte_identical_to_cold_on_all_profiles() {
    for index in 0..6 {
        let fw = capped_firmware(index, 80);
        let label = fw.profile.binary_name;
        let cold = scan(&fw, 1, None).with_zeroed_wall_clock();
        for threads in [1, 2, 8] {
            let cache = Arc::new(SummaryCache::new());
            // First scan populates the cache ...
            let populate = scan(&fw, threads, Some(CacheRef::new(cache.clone(), "img")))
                .with_zeroed_wall_clock();
            assert_eq!(populate, cold, "{label}: populating scan diverged at {threads} threads");
            let st = cache.scan_stats("img");
            assert_eq!(st.sym_hits + st.ddg_hits, 0, "{label}: cold scan cannot hit");
            // ... the second is served from it and must not differ in
            // any logical field.
            let warm = scan(&fw, threads, Some(CacheRef::new(cache.clone(), "img")))
                .with_zeroed_wall_clock();
            assert_eq!(warm, cold, "{label}: warm scan diverged at {threads} threads");
            let st = cache.scan_stats("img");
            assert!(st.ddg_hits > 0, "{label}: warm scan saw no DDG hits at {threads} threads");
            assert!(st.sym_hits > 0, "{label}: warm scan saw no symex hits at {threads} threads");
            assert_eq!(
                st.sym_misses, 0,
                "{label}: warm scan missed symex cache at {threads} threads: {:?}",
                st.sym_miss_fns
            );
        }
    }
}

/// Warmth is thread-count agnostic: a cache populated at 1 thread
/// serves a scan at 8 threads (and vice versa) — the content keys and
/// blobs never depend on pool layout or scheduling.
#[test]
fn cache_populated_at_one_thread_count_serves_another() {
    let fw = capped_firmware(2, 120);
    let cold = scan(&fw, 1, None).with_zeroed_wall_clock();
    let cache = Arc::new(SummaryCache::new());
    scan(&fw, 1, Some(CacheRef::new(cache.clone(), "img")));
    let warm8 = scan(&fw, 8, Some(CacheRef::new(cache.clone(), "img"))).with_zeroed_wall_clock();
    assert_eq!(warm8, cold, "populate@1t then warm@8t diverged");
    let st = cache.scan_stats("img");
    assert_eq!(st.sym_misses, 0, "cross-thread warm scan missed symex: {:?}", st.sym_miss_fns);
    assert_eq!(st.ddg_misses, 0, "cross-thread warm scan missed ddg: {:?}", st.ddg_miss_fns);
}

/// Functions transitively reaching any of `changed` through the direct
/// call graph (including `changed` itself) — the exact set whose DDG
/// final keys must move when `changed` bodies change.
fn reverse_reachable(bin: &dtaint_fwbin::Binary, changed: &[String]) -> BTreeSet<String> {
    let cfgs = dtaint_cfg::build_all_cfgs(bin).unwrap();
    let cg = dtaint_cfg::CallGraph::build(bin, &cfgs);
    let name_of: HashMap<u32, String> =
        bin.functions().iter().map(|s| (s.addr, s.name.clone())).collect();
    let addr_of: HashMap<&str, u32> =
        bin.functions().iter().map(|s| (s.name.as_str(), s.addr)).collect();
    let mut rev: HashMap<u32, Vec<u32>> = HashMap::new();
    for (caller, callees) in &cg.edges {
        for callee in callees {
            rev.entry(*callee).or_default().push(*caller);
        }
    }
    let mut frontier: Vec<u32> =
        changed.iter().filter_map(|n| addr_of.get(n.as_str())).copied().collect();
    let mut seen: BTreeSet<u32> = frontier.iter().copied().collect();
    while let Some(addr) = frontier.pop() {
        for &caller in rev.get(&addr).into_iter().flatten() {
            if seen.insert(caller) {
                frontier.push(caller);
            }
        }
    }
    seen.into_iter().filter_map(|a| name_of.get(&a).cloned()).collect()
}

/// The core version-pair check: after populating the cache with the
/// base build, scanning the updated build must (a) produce a report
/// byte-identical to a cold scan of the updated build, and (b) miss the
/// symex cache for exactly the changed functions and the DDG cache for
/// exactly the changed functions plus their transitive callers.
fn check_version_pair(profile_index: usize, cap: usize, edit_seed: u64, k: usize) {
    let mut p = table2_profiles().remove(profile_index);
    p.total_functions = p.total_functions.min(cap);
    let pair = build_version_pair(&p, edit_seed, k);
    let cold = scan(&pair.updated, 1, None).with_zeroed_wall_clock();

    let cache = Arc::new(SummaryCache::new());
    scan(&pair.base, 1, Some(CacheRef::new(cache.clone(), "img")));
    // A warm re-scan of the unchanged base isolates the *residual* miss
    // set: functions that can never be cached (degraded under budget,
    // etc.) — normally empty, but excluded from the delta either way.
    scan(&pair.base, 1, Some(CacheRef::new(cache.clone(), "img")));
    let residual = cache.scan_stats("img");

    let warm =
        scan(&pair.updated, 2, Some(CacheRef::new(cache.clone(), "img"))).with_zeroed_wall_clock();
    assert_eq!(warm, cold, "seed {edit_seed}: incremental re-scan diverged from cold scan");

    let st = cache.scan_stats("img");
    let changed: BTreeSet<String> = pair.changed.iter().cloned().collect();
    let mut expected_sym = changed.clone();
    expected_sym.extend(residual.sym_miss_fns.iter().cloned());
    assert_eq!(
        st.sym_miss_fns, expected_sym,
        "seed {edit_seed}: symex misses must be exactly the changed functions"
    );
    // DDG misses: every changed function must miss, and nothing outside
    // the changed set plus its transitive callers may. The caller side
    // is an upper bound, not an equality: a caller whose symbolic
    // summary never recorded the callsite (say, past the path budget)
    // does not depend on the callee, so its key — correctly — survives.
    let mut allowed_ddg = reverse_reachable(&pair.updated.binary, &pair.changed);
    allowed_ddg.extend(residual.ddg_miss_fns.iter().cloned());
    assert!(
        st.ddg_miss_fns.is_superset(&changed),
        "seed {edit_seed}: every changed function must miss the DDG cache: {:?}",
        st.ddg_miss_fns
    );
    assert!(
        st.ddg_miss_fns.is_subset(&allowed_ddg),
        "seed {edit_seed}: DDG misses leaked outside changed + transitive callers: {:?} vs {:?}",
        st.ddg_miss_fns,
        allowed_ddg
    );
    if !pair.changed.is_empty() {
        assert!(
            st.invalidations >= pair.changed.len() as u64,
            "seed {edit_seed}: changed functions must register as invalidations"
        );
    }
}

/// Deterministic spot check of the version-pair contract.
#[test]
fn version_pair_misses_only_changed_functions_and_their_callers() {
    check_version_pair(2, 100, 11, 2);
}

/// The cache must stay correct when the corpus contains a corrupt
/// image: `batch` isolates the damaged functions (never caching them),
/// reuses summaries everywhere else, and reproduces identical findings
/// on the warm run.
#[test]
fn batch_cache_survives_a_corrupt_image_in_the_corpus() {
    let dir = std::env::temp_dir().join(format!("dtaint-inc-corpus-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let good = capped_firmware(2, 60);
    std::fs::write(dir.join("good.fwi"), good.image.pack(false)).unwrap();
    let mut corrupt = capped_firmware(0, 50);
    let mutant = dtaint_fwgen::corrupt_binary(
        &corrupt.binary,
        &dtaint_fwgen::BinFault::GarbageOpcodes { index: 1, seed: 7 },
    )
    .to_bytes();
    for f in &mut corrupt.image.files {
        if f.data.starts_with(&dtaint_fwbin::fbf::FBF_MAGIC) {
            f.data = mutant.clone();
        }
    }
    std::fs::write(dir.join("corrupt.fwi"), corrupt.image.pack(false)).unwrap();

    let d = dir.to_string_lossy().into_owned();
    let (code, out) = dtaint_cli::run_captured(&["batch", &d]);
    assert_eq!(code, Ok(0), "cold batch over the corpus: {out}");
    let report_of = |name: &str| {
        let text = std::fs::read_to_string(dir.join(".dtaint-store/reports").join(name)).unwrap();
        AnalysisReport::from_json(text.trim()).unwrap().with_zeroed_wall_clock()
    };
    let cold_good = report_of("good.json");
    let cold_corrupt = report_of("corrupt.json");
    assert!(cold_corrupt.functions_skipped > 0, "the mutant image must degrade somewhere");

    let (code, out) = dtaint_cli::run_captured(&["batch", &d]);
    assert_eq!(code, Ok(0), "warm batch: {out}");
    assert!(out.contains("0 new, 0 reopened, 0 resolved"), "{out}");
    assert_eq!(report_of("good.json"), cold_good, "warm reports must match cold byte-for-byte");
    assert_eq!(report_of("corrupt.json"), cold_corrupt, "corrupt image report must be stable");
    let corpus = std::fs::read_to_string(dir.join(".dtaint-store/reports/corpus.json")).unwrap();
    assert!(!corpus.contains("\"ddg_hits\": 0,"), "warm run reuses summaries: {corpus}");
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Seeded version pairs: only changed functions and their transitive
    /// callers miss the cache, and the warm report is byte-identical to
    /// a cold one — for arbitrary edit seeds and edit counts.
    #[test]
    fn version_pairs_miss_exactly_changed_plus_callers(
        profile_index in prop_oneof![Just(0usize), Just(2usize)],
        edit_seed in any::<u64>(),
        k in 1usize..4,
    ) {
        check_version_pair(profile_index, 60, edit_seed, k);
    }
}
