//! Fleet observability drills: the corpus metrics rollup, the batch
//! heartbeat, `dtaint status` / `dtaint history`, and the Prometheus
//! textfile exporter — exercised end to end through the real CLI.
//!
//! The two invariants under test:
//!
//! 1. The corpus rollup (`--metrics-out`, and the `metrics` object in
//!    `corpus.json`) carries *logical* counters only, so it is
//!    bit-identical across `--jobs`, across `--threads`, and across an
//!    interrupt + `--resume` — scheduling must never show up in it.
//! 2. The heartbeat and `runs.jsonl` are advisory: they ride along with
//!    a run (and survive a crash for `dtaint status` to read), but the
//!    `--resume` byte-identity contract on `findings.json` and
//!    `corpus.json` holds with them present.

use std::path::{Path, PathBuf};

use dtaint_cli::run_captured;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dtaint-fleet-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Packs the profile-0 firmware at `functions` functions.
fn image_bytes(functions: usize, benign: bool) -> Vec<u8> {
    let mut profile = dtaint_fwgen::table2_profiles().remove(0);
    profile.total_functions = functions;
    if benign {
        profile.plants.clear();
        profile.extra_paths = 0;
    }
    dtaint_fwgen::build_firmware(&profile).image.pack(false)
}

/// Three distinct images whose names sort `alpha < bravo < charlie`.
fn three_image_corpus(tag: &str) -> PathBuf {
    let dir = tmpdir(tag);
    std::fs::write(dir.join("alpha.fwi"), image_bytes(50, false)).unwrap();
    std::fs::write(dir.join("bravo.fwi"), image_bytes(54, false)).unwrap();
    std::fs::write(dir.join("charlie.fwi"), image_bytes(50, true)).unwrap();
    dir
}

fn read(p: &Path) -> Vec<u8> {
    std::fs::read(p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

/// The logical-work rollup must not know how many workers scanned the
/// corpus: `--jobs 1`, `2`, and `4` produce byte-identical
/// `--metrics-out` files (each against its own cold store, so cache
/// scheduling cannot leak in either).
#[test]
fn corpus_rollup_is_bit_identical_across_jobs() {
    let dir = three_image_corpus("jobs");
    let d = dir.to_str().unwrap();
    let mut rollups: Vec<Vec<u8>> = Vec::new();
    for jobs in ["1", "2", "4"] {
        let store = dir.join(format!("store-j{jobs}"));
        let metrics = dir.join(format!("rollup-j{jobs}.json"));
        let (code, out) = run_captured(&[
            "batch",
            d,
            "--jobs",
            jobs,
            "--store",
            store.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
        ]);
        assert_eq!(code, Ok(0), "--jobs {jobs}: {out}");
        rollups.push(read(&metrics));
    }
    assert_eq!(rollups[0], rollups[1], "rollup diverged between --jobs 1 and 2");
    assert_eq!(rollups[0], rollups[2], "rollup diverged between --jobs 1 and 4");
    // And it is non-trivial: real logical counters, not an empty shell.
    let text = String::from_utf8(rollups[0].clone()).unwrap();
    assert!(text.contains("symex.blocks_executed"), "{text}");
}

/// The acceptance drill: kill a batch after one committed image, read
/// the wreck with `dtaint status`, then `--resume` — the database, the
/// corpus summary (rollup included), and the `--metrics-out` export all
/// come out byte-identical to a run that was never interrupted.
#[test]
fn status_reads_an_interrupted_batch_and_resume_stays_byte_identical() {
    let dir = three_image_corpus("drill");
    let d = dir.to_str().unwrap();
    let sa = dir.join("store-a");
    let sb = dir.join("store-b");
    let ma = dir.join("rollup-a.json");
    let mb = dir.join("rollup-b.json");

    // Reference: one uninterrupted run.
    let (code, out) = run_captured(&[
        "batch",
        d,
        "--store",
        sa.to_str().unwrap(),
        "--metrics-out",
        ma.to_str().unwrap(),
    ]);
    assert_eq!(code, Ok(0), "{out}");

    // Drill: alpha's journal append succeeds, then the store "dies".
    let (code, _) = run_captured(&[
        "batch",
        d,
        "--store",
        sb.to_str().unwrap(),
        "--drill-io",
        "kill-after-appends:1",
    ]);
    assert!(code.is_err(), "the drill must kill the run");

    // `status` on the wreck: no live run (the in-process lock was
    // released), the pre-kill heartbeat survives with phase "running",
    // and the journal shows exactly the committed prefix.
    let (code, out) = run_captured(&["status", sb.to_str().unwrap()]);
    assert_eq!(code, Ok(0), "status on an interrupted store: {out}");
    assert!(out.contains("no live batch"), "{out}");
    assert!(out.contains("heartbeat: running"), "{out}");
    assert!(out.contains("journal: 1 committed image(s)"), "{out}");
    assert!(out.contains("ok       alpha"), "{out}");
    assert!(out.contains("pending: 2 image(s)"), "{out}");

    // Resume finishes the corpus; every identity-contract artifact
    // matches the uninterrupted run byte for byte — including the
    // rollup, whose alpha share replays from the journal's v2 metrics.
    let (code, out) = run_captured(&[
        "batch",
        d,
        "--store",
        sb.to_str().unwrap(),
        "--resume",
        "--metrics-out",
        mb.to_str().unwrap(),
    ]);
    assert_eq!(code, Ok(0), "{out}");
    assert_eq!(read(&sa.join("findings.json")), read(&sb.join("findings.json")));
    assert_eq!(
        read(&sa.join("reports/corpus.json")),
        read(&sb.join("reports/corpus.json")),
        "corpus summary (rollup included) diverged after resume"
    );
    assert_eq!(read(&ma), read(&mb), "--metrics-out diverged after resume");

    // After completion, `status` flips to done and the journal is gone.
    let (code, out) = run_captured(&["status", sb.to_str().unwrap()]);
    assert_eq!(code, Ok(0), "{out}");
    assert!(out.contains("heartbeat: done"), "{out}");
    assert!(out.contains("journal: empty"), "{out}");
}

/// Run history accumulates one line per completed run, the resumed
/// count lands in the record, and `dtaint history` renders the trend.
#[test]
fn run_history_accumulates_across_runs_and_records_resume() {
    let dir = three_image_corpus("history");
    let d = dir.to_str().unwrap();
    let store = dir.join(".dtaint-store");

    let (code, out) = run_captured(&["batch", d]);
    assert_eq!(code, Ok(0), "{out}");

    // Interrupted runs append no history line...
    let (code, _) = run_captured(&["batch", d, "--drill-io", "kill-after-appends:1"]);
    assert!(code.is_err());
    // ...but their resume does, with the replayed image counted.
    let (code, out) = run_captured(&["batch", d, "--resume"]);
    assert_eq!(code, Ok(0), "{out}");

    let load = dtaint_store::parse_runs(&read(&store.join("runs.jsonl")));
    assert_eq!(load.discarded_lines, 0);
    assert_eq!(load.runs.len(), 2, "one line per completed run");
    assert_eq!(load.runs[0].images, 3);
    assert_eq!(load.runs[0].resumed, 0);
    assert_eq!(load.runs[1].resumed, 1, "alpha replayed from the journal");
    assert!(
        load.runs[1].generation > load.runs[0].generation,
        "the db generation advances run over run"
    );
    assert!(load.runs.iter().all(|r| r.ok == 3 && r.failures == 0 && r.timeouts == 0));

    let (code, out) = run_captured(&["history", store.to_str().unwrap()]);
    assert_eq!(code, Ok(0), "{out}");
    assert!(out.contains("2 run(s)"), "{out}");
    assert!(out.contains("0 regression(s)"), "{out}");
}

/// The heartbeat file progresses monotonically: the final "done" beat
/// accounts for every image, and its counters are internally
/// consistent with the Prometheus export next to it.
#[test]
fn final_heartbeat_and_prometheus_export_are_consistent() {
    let dir = three_image_corpus("prom");
    let d = dir.to_str().unwrap();
    let status = dir.join("hb.json");
    let prom = dir.join("metrics.prom");
    let (code, out) = run_captured(&[
        "batch",
        d,
        "--jobs",
        "2",
        "--status-out",
        status.to_str().unwrap(),
        "--prom-out",
        prom.to_str().unwrap(),
    ]);
    assert_eq!(code, Ok(0), "{out}");

    let hb: dtaint_telemetry::Heartbeat =
        serde_json::from_str(&String::from_utf8(read(&status)).unwrap()).unwrap();
    assert_eq!(hb.phase, "done");
    assert_eq!(hb.total, 3);
    assert_eq!(hb.done, 3, "the final beat accounts for every image");
    assert_eq!(hb.ok + hb.failed + hb.timeouts, hb.done);
    assert!(hb.elapsed_secs > 0.0);

    let text = String::from_utf8(read(&prom)).unwrap();
    dtaint_telemetry::lint_textfile(&text).expect("prom textfile lints clean");
    assert!(text.contains("# TYPE dtaint_batch_images gauge"), "{text}");
    assert!(text.contains("dtaint_batch_images 3"), "{text}");
    assert!(text.contains("dtaint_batch_cache_sym_misses_total"), "{text}");
    assert!(text.contains("dtaint_symex_blocks_executed_total"), "{text}");
}
