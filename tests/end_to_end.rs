//! Cross-crate integration tests: image → extraction → pipeline →
//! findings, scored against planted ground truth.

use dtaint_core::{Dtaint, DtaintConfig};
use dtaint_fwbin::Arch;
use dtaint_fwgen::spec::{Callee, FnSpec, ProgramSpec, Stmt};
use dtaint_fwgen::templates::{plant, PlantKind, PlantSpec};
use dtaint_fwgen::{build_firmware, compile, table2_profiles};
use dtaint_fwimage::{extract_binaries, extract_image};

/// A profile shrunk for test speed (fewer filler functions, same plants).
fn small(profile_idx: usize, functions: usize) -> dtaint_fwgen::FirmwareProfile {
    let mut p = table2_profiles().remove(profile_idx);
    p.total_functions = functions;
    p
}

fn analyze(fw: &dtaint_fwgen::GeneratedFirmware) -> dtaint_core::AnalysisReport {
    let config = DtaintConfig {
        function_filter: fw
            .profile
            .analyzed_prefixes
            .clone()
            .map(|v| v.into_iter().map(str::to_owned).collect()),
        ..Default::default()
    };
    Dtaint::with_config(config).analyze(&fw.binary, fw.profile.binary_name).unwrap()
}

/// Precision/recall against ground truth for one profile.
fn score(idx: usize, functions: usize) {
    let fw = build_firmware(&small(idx, functions));
    let report = analyze(&fw);
    let expected: Vec<_> = fw.ground_truth.iter().filter(|g| !g.sanitized).collect();
    // Recall: every planted vulnerability appears with the right
    // source/sink pair.
    for g in &expected {
        assert!(
            report
                .vulnerable_paths()
                .iter()
                .any(|f| f.sink == g.sink && f.sources.iter().any(|s| s.name == g.source)),
            "profile {idx}: plant {} ({} → {}) missed",
            g.id,
            g.source,
            g.sink
        );
    }
    // Precision: the count of distinct vulnerable sinks equals the plant
    // count (no false positives from fillers or guarded twins).
    assert_eq!(
        report.vulnerabilities(),
        expected.len(),
        "profile {idx}: false positives or duplicates"
    );
    // Paths dominate vulnerabilities, as in Table III.
    assert!(report.vulnerable_paths().len() >= report.vulnerabilities());
}

#[test]
fn dir645_mix_detected_exactly() {
    score(0, 120);
}

#[test]
fn dir890l_mix_detected_exactly() {
    score(1, 120);
}

#[test]
fn dgn1000_mix_detected_exactly() {
    score(2, 150);
}

#[test]
fn dgn2200_mix_detected_exactly() {
    score(3, 150);
}

#[test]
fn uniview_mix_detected_exactly() {
    score(4, 300);
}

#[test]
fn hikvision_mix_detected_exactly() {
    score(5, 400);
}

#[test]
fn image_roundtrip_preserves_analysis_results() {
    let fw = build_firmware(&small(0, 60));
    let direct = Dtaint::new().analyze(&fw.binary, "direct").unwrap();

    // Pack → scan → extract → analyze again.
    let blob = fw.image.pack(false);
    let img = extract_image(&blob).unwrap();
    let bins = extract_binaries(&img).unwrap();
    let reloaded = Dtaint::new().analyze(&bins[0].1, "reloaded").unwrap();

    assert_eq!(direct.vulnerabilities(), reloaded.vulnerabilities());
    assert_eq!(direct.functions, reloaded.functions);
    assert_eq!(direct.findings.len(), reloaded.findings.len());
}

#[test]
fn generation_and_detection_are_deterministic() {
    let a = build_firmware(&small(1, 80));
    let b = build_firmware(&small(1, 80));
    assert_eq!(a.binary, b.binary, "same seed, same binary");
    let ra = Dtaint::new().analyze(&a.binary, "a").unwrap();
    let rb = Dtaint::new().analyze(&b.binary, "b").unwrap();
    assert_eq!(ra.vulnerabilities(), rb.vulnerabilities());
    let sinks_a: Vec<u32> = ra.vulnerable_paths().iter().map(|f| f.sink_ins).collect();
    let sinks_b: Vec<u32> = rb.vulnerable_paths().iter().map(|f| f.sink_ins).collect();
    assert_eq!(sinks_a, sinks_b);
}

#[test]
fn same_program_detected_on_both_architectures() {
    for arch in [Arch::Arm32e, Arch::Mips32e] {
        let mut spec = ProgramSpec::new("xarch");
        let gt = plant(&mut spec, &PlantSpec::new(PlantKind::BofRecvMemcpy, "p", false, 2));
        let mut main = FnSpec::new("main", 0);
        main.push(Stmt::Call { callee: Callee::Func(gt.entry_fn), args: vec![], ret: None });
        main.push(Stmt::Return(None));
        spec.func(main);
        let bin = compile(&spec, arch).unwrap();
        let r = Dtaint::new().analyze(&bin, "xarch").unwrap();
        assert_eq!(r.vulnerabilities(), 1, "{arch}");
        assert_eq!(r.arch, arch.to_string());
    }
}

#[test]
fn report_json_roundtrips_through_serde() {
    let fw = build_firmware(&small(0, 60));
    let report = Dtaint::new().analyze(&fw.binary, "cgibin").unwrap();
    let json = report.to_json().unwrap();
    let back = dtaint_core::AnalysisReport::from_json(&json).unwrap();
    assert_eq!(back.findings.len(), report.findings.len());
    assert_eq!(back.vulnerabilities(), report.vulnerabilities());
}

#[test]
fn encrypted_image_fails_extraction_but_not_the_suite() {
    let fw = build_firmware(&small(1, 60));
    let blob = fw.image.pack(true);
    assert!(extract_image(&blob).is_err(), "encrypted image must not unpack");
}

#[test]
fn disabled_indirect_resolution_loses_the_hikvision_flows() {
    // Ablation guard: the alias+indirect plants require the layout
    // similarity stage.
    let mut p = small(5, 200);
    p.plants.retain(|pl| matches!(pl.kind, PlantKind::BofUrlParamAliasIndirect));
    let fw = build_firmware(&p);

    let full = Dtaint::new().analyze(&fw.binary, "full").unwrap();
    let planted = fw.ground_truth.iter().filter(|g| !g.sanitized).count();
    assert_eq!(full.vulnerabilities(), planted);

    let mut config = DtaintConfig::default();
    config.dataflow.enable_indirect = false;
    let ablated = Dtaint::with_config(config).analyze(&fw.binary, "ablated").unwrap();
    assert!(
        ablated.vulnerabilities() < planted,
        "without layout similarity the indirect flows must be missed"
    );
}
